"""Denial-constraint violation detection.

For each constraint the detector enumerates violating tuples (single-tuple
constraints) or tuple pairs (two-tuple constraints) and emits one
:class:`~repro.detect.hypergraph.Violation` hyperedge per finding.  Cells
named by the constraint's predicates on the violating tuples become noisy.

Two-tuple constraints are evaluated with a hash join on their equality
predicates — the same strategy DeepDive's grounding queries use — so a
constraint like ``¬(t1.Zip = t2.Zip ∧ t1.City ≠ t2.City)`` costs
O(|D| + Σ_group |group|²) instead of O(|D|²).  Constraints with no
equality predicate fall back to a guarded all-pairs scan.
"""

from __future__ import annotations

from collections import defaultdict

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Predicate, TupleRef
from repro.dataset.dataset import Cell, Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.detect.hypergraph import ConflictHypergraph, Violation


class QuadraticScanError(RuntimeError):
    """Raised when a join-free constraint would force a too-large O(n²) scan."""


def _join_sides(pred: Predicate) -> tuple[str, str]:
    """For an equijoin predicate, the attributes bound to (t1, t2)."""
    assert isinstance(pred.right, TupleRef)
    if pred.left.tuple_index == 1:
        return pred.left.attribute, pred.right.attribute
    return pred.right.attribute, pred.left.attribute


class ViolationDetector(ErrorDetector):
    """Detects violations of a set of denial constraints.

    Parameters
    ----------
    constraints:
        The denial constraints Σ.
    max_quadratic_tuples:
        Safety bound for constraints lacking an equality join predicate;
        datasets larger than this raise :class:`QuadraticScanError` instead
        of silently running an O(n²) scan.
    max_pairs_per_constraint:
        Cap on recorded violating pairs per constraint (the conflict
        hypergraph needs representative evidence, not every duplicate pair;
        the paper's Physicians run records 5.4M violations, which stays
        within this default).
    """

    def __init__(self, constraints: list[DenialConstraint],
                 max_quadratic_tuples: int = 20_000,
                 max_pairs_per_constraint: int = 10_000_000):
        self.constraints = list(constraints)
        self.max_quadratic_tuples = max_quadratic_tuples
        self.max_pairs_per_constraint = max_pairs_per_constraint

    # ------------------------------------------------------------------
    def detect(self, dataset: Dataset) -> DetectionResult:
        hypergraph = ConflictHypergraph(self.constraints)
        for dc in self.constraints:
            if dc.is_single_tuple:
                self._detect_single(dataset, dc, hypergraph)
            else:
                self._detect_pairs(dataset, dc, hypergraph)
        return DetectionResult(noisy_cells=hypergraph.cells(), hypergraph=hypergraph)

    # ------------------------------------------------------------------
    # Single-tuple constraints
    # ------------------------------------------------------------------
    def _detect_single(self, dataset: Dataset, dc: DenialConstraint,
                       hypergraph: ConflictHypergraph) -> None:
        attrs = sorted(dc.attributes_of(1))
        for tid in dataset.tuple_ids:
            values = dataset.tuple_dict(tid)
            if dc.violates(values):
                cells = tuple(Cell(tid, a) for a in attrs)
                hypergraph.add(Violation(dc.name, (tid,), cells))

    # ------------------------------------------------------------------
    # Two-tuple constraints via hash join
    # ------------------------------------------------------------------
    def _detect_pairs(self, dataset: Dataset, dc: DenialConstraint,
                      hypergraph: ConflictHypergraph) -> None:
        joins = dc.equijoin_predicates
        if joins:
            pair_iter = self._hash_join_pairs(dataset, joins)
        else:
            pair_iter = self._all_pairs(dataset)

        residuals = dc.residual_predicates
        attrs1 = sorted(dc.attributes_of(1))
        attrs2 = sorted(dc.attributes_of(2))
        recorded = 0
        row_cache = _RowDictCache(dataset)
        for t1, t2 in pair_iter:
            v1 = row_cache.get(t1)
            v2 = row_cache.get(t2)
            violated_forward = all(p.evaluate(v1, v2) for p in residuals)
            # Order-sensitive predicates (<, >) may only fire with the pair
            # flipped; the hash join yields each unordered pair once, so
            # check the reverse direction explicitly.
            violated_backward = (not violated_forward
                                 and all(p.evaluate(v2, v1) for p in residuals))
            if violated_forward:
                cells = (tuple(Cell(t1, a) for a in attrs1)
                         + tuple(Cell(t2, a) for a in attrs2))
                hypergraph.add(Violation(dc.name, (t1, t2), cells))
                recorded += 1
            elif violated_backward:
                cells = (tuple(Cell(t2, a) for a in attrs1)
                         + tuple(Cell(t1, a) for a in attrs2))
                hypergraph.add(Violation(dc.name, (t2, t1), cells))
                recorded += 1
            if recorded >= self.max_pairs_per_constraint:
                break

    def _hash_join_pairs(self, dataset: Dataset, joins: list[Predicate]):
        """Yield unordered candidate pairs sharing all join keys."""
        t1_attrs = [_join_sides(p)[0] for p in joins]
        t2_attrs = [_join_sides(p)[1] for p in joins]
        t1_idx = [dataset.schema.index_of(a) for a in t1_attrs]
        t2_idx = [dataset.schema.index_of(a) for a in t2_attrs]
        symmetric = t1_attrs == t2_attrs

        buckets: dict[tuple, list[int]] = defaultdict(list)
        for tid in dataset.tuple_ids:
            row = dataset.row_ref(tid)
            key = tuple(row[i] for i in t2_idx)
            if any(v is None for v in key):
                continue
            buckets[key].append(tid)

        if symmetric:
            for tids in buckets.values():
                for i in range(len(tids)):
                    for j in range(i + 1, len(tids)):
                        yield tids[i], tids[j]
        else:
            for tid in dataset.tuple_ids:
                row = dataset.row_ref(tid)
                key = tuple(row[i] for i in t1_idx)
                if any(v is None for v in key):
                    continue
                for other in buckets.get(key, ()):
                    if other > tid:  # each unordered pair once
                        yield tid, other
                    elif other < tid:
                        # pair handled when `other` played t1, unless keys
                        # differ asymmetrically; re-check that case
                        other_key = tuple(dataset.row_ref(other)[i] for i in t1_idx)
                        if other_key != key:
                            yield tid, other

    def _all_pairs(self, dataset: Dataset):
        n = dataset.num_tuples
        if n > self.max_quadratic_tuples:
            raise QuadraticScanError(
                f"constraint without equality predicate needs an O(n²) scan "
                f"over {n} tuples (> {self.max_quadratic_tuples}); add a join "
                f"predicate or raise max_quadratic_tuples")
        for t1 in range(n):
            for t2 in range(t1 + 1, n):
                yield t1, t2


class _RowDictCache:
    """Small LRU-free memo of tuple_dict results for the join inner loop."""

    def __init__(self, dataset: Dataset, capacity: int = 4096):
        self._dataset = dataset
        self._cache: dict[int, dict[str, str | None]] = {}
        self._capacity = capacity

    def get(self, tid: int) -> dict[str, str | None]:
        hit = self._cache.get(tid)
        if hit is None:
            hit = self._dataset.tuple_dict(tid)
            if len(self._cache) >= self._capacity:
                self._cache.clear()
            self._cache[tid] = hit
        return hit
