"""Denial-constraint violation detection.

For each constraint the detector enumerates violating tuples (single-tuple
constraints) or tuple pairs (two-tuple constraints) and emits one
:class:`~repro.detect.hypergraph.Violation` hyperedge per finding.  Cells
named by the constraint's predicates on the violating tuples become noisy.

Two-tuple constraints are evaluated with a hash join on their equality
predicates — the same strategy DeepDive's grounding queries use — so a
constraint like ``¬(t1.Zip = t2.Zip ∧ t1.City ≠ t2.City)`` costs
O(|D| + Σ_group |group|²) instead of O(|D|²).  Constraints with no
equality predicate fall back to a guarded all-pairs scan.

When a grounding :class:`~repro.engine.Engine` is supplied, the join and
the equality/inequality residual predicates run vectorized over the
engine's coded columns; only residuals the engine cannot express
(constants, order comparisons, similarity) fall back to per-pair Python
evaluation, and only on pairs the vectorized mask lets through.  The
engine path reproduces the naive pair stream order exactly, so both paths
emit byte-identical violation lists.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Operator, Predicate, TupleRef
from repro.dataset.dataset import Cell, Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.detect.hypergraph import ConflictHypergraph, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


class QuadraticScanError(RuntimeError):
    """Raised when a join-free constraint would force a too-large O(n²) scan."""


def _join_sides(pred: Predicate) -> tuple[str, str]:
    """For an equijoin predicate, the attributes bound to (t1, t2)."""
    assert isinstance(pred.right, TupleRef)
    if pred.left.tuple_index == 1:
        return pred.left.attribute, pred.right.attribute
    return pred.right.attribute, pred.left.attribute


class ViolationDetector(ErrorDetector):
    """Detects violations of a set of denial constraints.

    Parameters
    ----------
    constraints:
        The denial constraints Σ.
    max_quadratic_tuples:
        Safety bound for constraints lacking an equality join predicate;
        datasets larger than this raise :class:`QuadraticScanError` instead
        of silently running an O(n²) scan.
    max_pairs_per_constraint:
        Cap on recorded violating pairs per constraint (the conflict
        hypergraph needs representative evidence, not every duplicate pair;
        the paper's Physicians run records 5.4M violations, which stays
        within this default).
    engine:
        Optional grounding engine.  When given (and built over the same
        dataset passed to :meth:`detect`), two-tuple constraints with
        equality predicates run as vectorized hash joins on the engine's
        columnar store; otherwise the naive Python path runs.  Results
        are identical either way.
    max_engine_pairs:
        Memory guard for the engine path: joins estimated to materialise
        more candidate pairs than this fall back to the streaming naive
        join (same results, O(1) pair memory).
    """

    def __init__(self, constraints: list[DenialConstraint],
                 max_quadratic_tuples: int = 20_000,
                 max_pairs_per_constraint: int = 10_000_000,
                 engine: "Engine | None" = None,
                 max_engine_pairs: int = 20_000_000):
        self.constraints = list(constraints)
        self.max_quadratic_tuples = max_quadratic_tuples
        self.max_pairs_per_constraint = max_pairs_per_constraint
        self.engine = engine
        self.max_engine_pairs = max_engine_pairs

    # ------------------------------------------------------------------
    def detect(self, dataset: Dataset) -> DetectionResult:
        hypergraph = ConflictHypergraph(self.constraints)
        engine = self._engine_for(dataset)
        for dc in self.constraints:
            if dc.is_single_tuple:
                self._detect_single(dataset, dc, hypergraph)
            elif engine is not None and dc.equijoin_predicates:
                self._detect_pairs_engine(engine, dataset, dc, hypergraph)
            else:
                self._detect_pairs(dataset, dc, hypergraph)
        return DetectionResult(noisy_cells=hypergraph.cells(), hypergraph=hypergraph)

    def _engine_for(self, dataset: Dataset) -> "Engine | None":
        """The configured engine, if it actually covers ``dataset``."""
        if self.engine is not None and self.engine.dataset is dataset:
            return self.engine
        return None

    # ------------------------------------------------------------------
    # Single-tuple constraints
    # ------------------------------------------------------------------
    def _detect_single(self, dataset: Dataset, dc: DenialConstraint,
                       hypergraph: ConflictHypergraph) -> None:
        attrs = sorted(dc.attributes_of(1))
        for tid in dataset.tuple_ids:
            values = dataset.tuple_dict(tid)
            if dc.violates(values):
                cells = tuple(Cell(tid, a) for a in attrs)
                hypergraph.add(Violation(dc.name, (tid,), cells))

    # ------------------------------------------------------------------
    # Two-tuple constraints via hash join
    # ------------------------------------------------------------------
    def _detect_pairs(self, dataset: Dataset, dc: DenialConstraint,
                      hypergraph: ConflictHypergraph) -> None:
        joins = dc.equijoin_predicates
        if joins:
            pair_iter = self._hash_join_pairs(dataset, joins)
        else:
            pair_iter = self._all_pairs(dataset)

        residuals = dc.residual_predicates
        attrs1 = sorted(dc.attributes_of(1))
        attrs2 = sorted(dc.attributes_of(2))
        recorded = 0
        row_cache = _RowDictCache(dataset)
        for t1, t2 in pair_iter:
            v1 = row_cache.get(t1)
            v2 = row_cache.get(t2)
            violated_forward = all(p.evaluate(v1, v2) for p in residuals)
            # Order-sensitive predicates (<, >) may only fire with the pair
            # flipped; the hash join yields each unordered pair once, so
            # check the reverse direction explicitly.
            violated_backward = (not violated_forward
                                 and all(p.evaluate(v2, v1) for p in residuals))
            if violated_forward:
                cells = (tuple(Cell(t1, a) for a in attrs1)
                         + tuple(Cell(t2, a) for a in attrs2))
                hypergraph.add(Violation(dc.name, (t1, t2), cells))
                recorded += 1
            elif violated_backward:
                cells = (tuple(Cell(t2, a) for a in attrs1)
                         + tuple(Cell(t1, a) for a in attrs2))
                hypergraph.add(Violation(dc.name, (t2, t1), cells))
                recorded += 1
            if recorded >= self.max_pairs_per_constraint:
                break

    def _hash_join_pairs(self, dataset: Dataset, joins: list[Predicate]):
        """Yield unordered candidate pairs sharing all join keys."""
        t1_attrs = [_join_sides(p)[0] for p in joins]
        t2_attrs = [_join_sides(p)[1] for p in joins]
        t1_idx = [dataset.schema.index_of(a) for a in t1_attrs]
        t2_idx = [dataset.schema.index_of(a) for a in t2_attrs]
        symmetric = t1_attrs == t2_attrs

        buckets: dict[tuple, list[int]] = defaultdict(list)
        for tid in dataset.tuple_ids:
            row = dataset.row_ref(tid)
            key = tuple(row[i] for i in t2_idx)
            if any(v is None for v in key):
                continue
            buckets[key].append(tid)

        if symmetric:
            for tids in buckets.values():
                for i in range(len(tids)):
                    for j in range(i + 1, len(tids)):
                        yield tids[i], tids[j]
        else:
            for tid in dataset.tuple_ids:
                row = dataset.row_ref(tid)
                key = tuple(row[i] for i in t1_idx)
                if any(v is None for v in key):
                    continue
                for other in buckets.get(key, ()):
                    if other > tid:  # each unordered pair once
                        yield tid, other
                    elif other < tid:
                        # pair handled when `other` played t1, unless keys
                        # differ asymmetrically; re-check that case
                        other_key = tuple(dataset.row_ref(other)[i] for i in t1_idx)
                        if other_key != key:
                            yield tid, other

    # ------------------------------------------------------------------
    # Two-tuple constraints via the vectorized engine
    # ------------------------------------------------------------------
    def _detect_pairs_engine(self, engine: "Engine", dataset: Dataset,
                             dc: DenialConstraint,
                             hypergraph: ConflictHypergraph) -> None:
        """Engine fast path: vectorized join + vectorized residual mask.

        Emits exactly the violations (and order) of :meth:`_detect_pairs`.
        """
        join_attrs = [_join_sides(p) for p in dc.equijoin_predicates]
        if engine.backend.estimated_join_pairs(join_attrs) > self.max_engine_pairs:
            # Near-constant join key: materialising the pair arrays would
            # dwarf the vectorization win — stream them instead.
            self._detect_pairs(dataset, dc, hypergraph)
            return
        t1s, t2s = engine.backend.join_pairs(join_attrs)
        if not len(t1s):
            return

        residuals = dc.residual_predicates
        vectorized = [p for p in residuals if _is_vectorizable(p)]
        python = [p for p in residuals if not _is_vectorizable(p)]
        forward = _residual_mask(engine, vectorized, t1s, t2s)
        backward = _residual_mask(engine, vectorized, t2s, t1s)

        candidates = np.nonzero(forward | backward)[0]
        if not len(candidates):
            return
        attrs1 = sorted(dc.attributes_of(1))
        attrs2 = sorted(dc.attributes_of(2))

        if not python:
            # Every candidate is a violation; orient each pair the way the
            # naive forward/backward checks would and materialise in bulk.
            candidates = candidates[: self.max_pairs_per_constraint]
            fwd_c = forward[candidates]
            first = np.where(fwd_c, t1s[candidates], t2s[candidates]).tolist()
            second = np.where(fwd_c, t2s[candidates], t1s[candidates]).tolist()
            name = dc.name
            make_cell = Cell._make  # skips the per-field constructor frame
            hypergraph.add_many(name, [
                Violation(name, (a, b),
                          tuple([make_cell((a, x)) for x in attrs1]
                                + [make_cell((b, x)) for x in attrs2]))
                for a, b in zip(first, second)
            ])
            return

        fwd = forward[candidates].tolist()
        bwd = backward[candidates].tolist()
        t1_list = t1s[candidates].tolist()
        t2_list = t2s[candidates].tolist()

        recorded = 0
        row_cache = _RowDictCache(dataset)
        for k, (t1, t2) in enumerate(zip(t1_list, t2_list)):
            v1 = row_cache.get(t1)
            v2 = row_cache.get(t2)
            violated_forward = (fwd[k]
                                and all(p.evaluate(v1, v2) for p in python))
            violated_backward = (not violated_forward and bwd[k]
                                 and all(p.evaluate(v2, v1) for p in python))
            if violated_forward:
                cells = (tuple(Cell(t1, a) for a in attrs1)
                         + tuple(Cell(t2, a) for a in attrs2))
                hypergraph.add(Violation(dc.name, (t1, t2), cells))
                recorded += 1
            elif violated_backward:
                cells = (tuple(Cell(t2, a) for a in attrs1)
                         + tuple(Cell(t1, a) for a in attrs2))
                hypergraph.add(Violation(dc.name, (t2, t1), cells))
                recorded += 1
            if recorded >= self.max_pairs_per_constraint:
                break

    def _all_pairs(self, dataset: Dataset):
        n = dataset.num_tuples
        if n > self.max_quadratic_tuples:
            raise QuadraticScanError(
                f"constraint without equality predicate needs an O(n²) scan "
                f"over {n} tuples (> {self.max_quadratic_tuples}); add a join "
                f"predicate or raise max_quadratic_tuples")
        for t1 in range(n):
            for t2 in range(t1 + 1, n):
                yield t1, t2


def _is_vectorizable(pred: Predicate) -> bool:
    """Binary ≠ predicates compare dictionary codes directly; everything
    else (constants, order comparisons, similarity, same-tuple predicates)
    needs concrete values and stays in Python.  Binary = predicates never
    appear here — they are equijoins, consumed by the join itself."""
    return pred.is_binary and pred.op is Operator.NEQ


def _residual_mask(engine: "Engine", predicates: list[Predicate],
                   rows1: np.ndarray, rows2: np.ndarray) -> np.ndarray:
    """Conjunction of vectorizable residuals over candidate pairs.

    ``rows1``/``rows2`` are the tuple ids playing positions t1/t2 in this
    evaluation direction (swap them to test the reverse orientation, as
    the naive detector does).  NULL on either side makes a predicate
    False, matching :meth:`Predicate.evaluate`.
    """
    store = engine.store
    mask = np.ones(len(rows1), dtype=bool)
    for pred in predicates:
        assert isinstance(pred.right, TupleRef)
        codes_left, codes_right = store.shared_codes(pred.left.attribute,
                                                     pred.right.attribute)
        lhs = codes_left[rows1 if pred.left.tuple_index == 1 else rows2]
        rhs = codes_right[rows1 if pred.right.tuple_index == 1 else rows2]
        mask &= (lhs >= 0) & (rhs >= 0) & (lhs != rhs)
    return mask


class _RowDictCache:
    """Small LRU-free memo of tuple_dict results for the join inner loop."""

    def __init__(self, dataset: Dataset, capacity: int = 4096):
        self._dataset = dataset
        self._cache: dict[int, dict[str, str | None]] = {}
        self._capacity = capacity

    def get(self, tid: int) -> dict[str, str | None]:
        hit = self._cache.get(tid)
        if hit is None:
            hit = self._dataset.tuple_dict(tid)
            if len(self._cache) >= self._capacity:
                self._cache.clear()
            self._cache[tid] = hit
        return hit
