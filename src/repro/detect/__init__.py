"""Error detection module (Section 2.2, "Error Detection").

HoloClean treats error detection as a black box that splits the dataset
into noisy cells ``D_n`` and clean cells ``D_c``.  This package ships the
detectors mentioned in the paper: denial-constraint violation detection
[11], frequency-based outlier detection [15, 22], NULL detection, and
detection against external dictionaries [5, 13, 19], plus an ensemble
combinator.  The violation detector also produces the conflict hypergraph
[26] consumed by the tuple-partitioning optimization (Algorithm 3).
"""

from repro.detect.base import DetectionResult, ErrorDetector
from repro.detect.hypergraph import ConflictHypergraph, Violation
from repro.detect.violations import ViolationDetector
from repro.detect.outliers import OutlierDetector
from repro.detect.nulls import NullDetector
from repro.detect.external import ExternalDetector
from repro.detect.ensemble import EnsembleDetector
from repro.detect.labeler import (
    ABSTAIN,
    CLEAN,
    ERROR,
    LabelingFunction,
    ProgrammaticDetector,
    lf_allowed_values,
    lf_null,
    lf_pattern,
    lf_rare_value,
)

__all__ = [
    "ABSTAIN",
    "CLEAN",
    "ERROR",
    "LabelingFunction",
    "ProgrammaticDetector",
    "lf_allowed_values",
    "lf_null",
    "lf_pattern",
    "lf_rare_value",
    "DetectionResult",
    "ErrorDetector",
    "ConflictHypergraph",
    "Violation",
    "ViolationDetector",
    "OutlierDetector",
    "NullDetector",
    "ExternalDetector",
    "EnsembleDetector",
]
