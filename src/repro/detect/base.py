"""Detector interface and detection results.

Every detector maps a dataset to a set of *noisy* cells ``D_n``; the clean
cells are ``D_c = D \\ D_n`` (Section 2.2).  Detectors that reason about
constraints additionally return the conflict hypergraph they discovered.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.dataset.dataset import Cell, Dataset
from repro.detect.hypergraph import ConflictHypergraph


@dataclass
class DetectionResult:
    """Noisy cells plus (optionally) the conflict hypergraph behind them."""

    noisy_cells: set[Cell] = field(default_factory=set)
    hypergraph: ConflictHypergraph = field(default_factory=ConflictHypergraph)

    def clean_cells(self, dataset: Dataset,
                    attributes: list[str] | None = None) -> list[Cell]:
        """``D_c``: every cell of the dataset not flagged noisy.

        Restricted to ``attributes`` when given (e.g. only repairable data
        attributes).
        """
        attrs = attributes if attributes is not None else dataset.schema.names
        return [
            Cell(tid, a)
            for tid in dataset.tuple_ids
            for a in attrs
            if Cell(tid, a) not in self.noisy_cells
        ]

    def merge(self, other: "DetectionResult") -> None:
        self.noisy_cells |= other.noisy_cells
        self.hypergraph.merge(other.hypergraph)

    def __repr__(self) -> str:
        return (f"DetectionResult(noisy_cells={len(self.noisy_cells)}, "
                f"violations={len(self.hypergraph)})")


class ErrorDetector(abc.ABC):
    """Base class for all error detectors."""

    @abc.abstractmethod
    def detect(self, dataset: Dataset) -> DetectionResult:
        """Return the noisy cells this detector finds in ``dataset``."""

    @property
    def name(self) -> str:
        return type(self).__name__
