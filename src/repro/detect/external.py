"""Error detection against external dictionaries.

When a tuple aligns with dictionary entries through a matching dependency
but its target cell disagrees with every matched value, that cell is
flagged as noisy (the "leverage external data" path of Figure 2's error
detection module [5, 13, 19]).
"""

from __future__ import annotations

from repro.constraints.matching import MatchingDependency
from repro.dataset.dataset import Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.external.dictionary import ExternalDictionary
from repro.external.matcher import match_dictionary


class ExternalDetector(ErrorDetector):
    """Flags cells that contradict all matched dictionary values."""

    def __init__(self, dictionary: ExternalDictionary,
                 dependencies: list[MatchingDependency]):
        self.dictionary = dictionary
        self.dependencies = list(dependencies)

    def detect(self, dataset: Dataset) -> DetectionResult:
        matched = match_dictionary(dataset, self.dictionary, self.dependencies)
        noisy = set()
        for cell in matched.cells():
            observed = dataset.cell_value(cell)
            if observed is None:
                noisy.add(cell)
                continue
            agreed = any(m.value == observed for m in matched.for_cell(cell))
            if not agreed:
                noisy.add(cell)
        return DetectionResult(noisy_cells=noisy)
