"""Repair-as-a-service: session-keyed execution of the staged plan.

:class:`RepairService` is the transport-independent core of the
serving subsystem — :mod:`repro.serve.server` puts an asyncio HTTP
front end on it, tests and the load benchmark drive it directly.

Every repair request resolves to one of three paths, labelled in the
response and in the ``serve.*`` metrics:

* **cold** — no warm session and no checkpoint: the full
  Detect→Compile→Learn→Infer→Apply plan runs, on a bounded
  ``ProcessPoolExecutor`` when ``serve_workers > 0`` (the grounding
  work happens off the serving process) or inline otherwise, and the
  finished context is admitted to the LRU session store.
* **rehydrated** — no warm session but a checkpoint exists: the
  context is rebuilt from disk (engine and tracer come back lazily)
  and the plan re-enters wherever the checkpoint stopped; detect and
  compile skip themselves because their artifacts survived the trip.
* **warm** — the session store has the context: only the
  learn→infer→apply suffix runs (detect/compile skip), which is the
  millisecond path the store exists for.

Feedback requests (Section 2.2 of the paper) go through
:meth:`~repro.core.session.RepairSession.from_context`, so the serving
layer shares the exact feedback semantics of the library session —
verified values become labeled evidence and clamps on the next rerun.

Admission control is a simple bounded counter: at most
``serve_workers`` jobs run while ``serve_queue_depth`` more may wait;
beyond that :class:`Saturated` is raised, which the HTTP layer maps to
429 + ``Retry-After``.  Each completed job refreshes the ``serve.*``
gauges and appends to the ``serve.job_seconds`` series; per-request
trace spans (``serve.request``) land on the session's tracer, and each
job's :class:`~repro.obs.report.RunReport` rides on the repair result.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import ThreadPoolExecutor

from repro.constraints.fd import parse_fd
from repro.constraints.parser import DCParseError, parse_dc
from repro.core.config import HoloCleanConfig
from repro.core.session import RepairSession
from repro.core.stages import RepairContext, RepairPlan
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Attribute, Schema
from repro.obs import MetricsRegistry, get_logger
from repro.serve.checkpoint import CheckpointError, CheckpointStore
from repro.serve.store import Session, SessionKey, SessionStore

log = get_logger("serve")

#: Trace-root budget per warm session: reruns append spans to the same
#: tracer, so long-lived sessions trim their oldest roots past this.
SPAN_ROOT_CAP = 256


class ServiceError(Exception):
    """An error that maps onto an HTTP status."""

    status = 500


class BadRequest(ServiceError):
    """Malformed payload or invalid re-entry (HTTP 400)."""

    status = 400


class NotFound(ServiceError):
    """Unknown session id or route (HTTP 404)."""

    status = 404


class Saturated(ServiceError):
    """Worker pool and queue are full (HTTP 429 + Retry-After)."""

    status = 429
    retry_after = 1


def _pool_warmup(delay: float) -> int:
    """No-op job that holds a worker long enough to force full spawn."""
    time.sleep(delay)
    return 0


def _run_cold_job(ctx: RepairContext) -> RepairContext:
    """Full-plan repair, shaped for a worker process.

    Module-level so it pickles by reference; the engine and tracer are
    stripped before the context travels back (neither pickles, both
    rebuild lazily in the parent).
    """
    ctx = RepairPlan.default().run(ctx)
    if ctx.engine is not None:
        ctx.engine.close()
        ctx.engine = None
    if ctx.tracer is not None:
        ctx.tracer.shutdown()
        ctx.tracer = None
    return ctx


class RepairService:
    """Session-keyed repair execution behind a bounded worker pool."""

    def __init__(self, config: HoloCleanConfig | None = None):
        self.config = config or HoloCleanConfig()
        self.workers = self.config.serve_workers
        self.queue_depth = self.config.serve_queue_depth
        self.store = SessionStore(
            capacity=self.config.serve_max_sessions, on_evict=self._on_evict
        )
        self.checkpoints = (
            CheckpointStore(self.config.serve_checkpoint_dir)
            if self.config.serve_checkpoint_dir
            else None
        )
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        self._jobs = ThreadPoolExecutor(
            max_workers=max(1, self.workers), thread_name_prefix="serve-job"
        )
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False
        # Spawn the worker processes NOW, while (typically) only the
        # init thread exists: forking later, from a job thread under a
        # running event loop, can deadlock the child on locks the fork
        # copied mid-acquire.  After the warmup no submit forks again —
        # the pool is at max_workers and reuses idle processes.
        if self.workers > 0:
            self._spawn_pool()
        self._gate = threading.Lock()
        self._inflight = 0
        self._counts = {
            "requests": 0,
            "cold": 0,
            "warm": 0,
            "rehydrated": 0,
            "rejected": 0,
            "errors": 0,
            "timeouts": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------
    # Public API (sync; submit_* return futures for the async front end)
    # ------------------------------------------------------------------
    def submit_repair(self, payload: dict) -> "Future[dict]":
        self._admit()
        return self._jobs.submit(self._guarded, self._repair_job, payload)

    def submit_feedback(self, sid: str, payload: dict) -> "Future[dict]":
        self._admit()
        return self._jobs.submit(self._guarded, self._feedback_job, sid, payload)

    def repair(self, payload: dict) -> dict:
        return self.submit_repair(payload).result()

    def feedback(self, sid: str, payload: dict) -> dict:
        return self.submit_feedback(sid, payload).result()

    def marginals(
        self, sid: str, tid: int | None = None, attribute: str | None = None
    ) -> dict:
        """Instant read of a session's cell marginals (no job queue)."""
        session = self._resident_session(sid)
        ctx = session.ctx
        with session.lock:
            if ctx.model is None or ctx.marginals is None:
                raise BadRequest(
                    f"session {sid} has no marginals yet; POST /repair first"
                )
            cells = []
            for vid in ctx.model.query_ids:
                info = ctx.model.graph.variables[vid]
                if tid is not None and info.cell.tid != tid:
                    continue
                if attribute is not None and info.cell.attribute != attribute:
                    continue
                marginal = ctx.marginals[vid]
                best = int(marginal.argmax())
                cells.append(
                    {
                        "tid": info.cell.tid,
                        "attribute": info.cell.attribute,
                        "domain": list(info.domain),
                        "marginal": [float(p) for p in marginal],
                        "chosen": info.domain[best],
                        "confidence": float(marginal[best]),
                    }
                )
        return {"session": sid, "cells": cells}

    def delete_session(self, sid: str, checkpoint: bool = True) -> dict:
        """Evict a session; optionally preserve (or purge) its checkpoint."""
        found_warm = False
        if checkpoint:
            found_warm = self.store.evict(sid) is not None
            found_disk = self.checkpoints.has(sid) if self.checkpoints else False
        else:
            found_warm = self.store.remove(sid) is not None
            found_disk = bool(self.checkpoints and self.checkpoints.delete(sid))
        if not (found_warm or found_disk):
            raise NotFound(f"unknown session {sid!r}")
        self._sync_metrics()
        return {"session": sid, "evicted": found_warm, "checkpointed": found_disk}

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "sessions": len(self.store),
            "inflight": self._inflight,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "checkpointing": self.checkpoints is not None,
        }

    def metrics_snapshot(self) -> dict:
        self._sync_metrics()
        return self.metrics.as_dict()

    def note_timeout(self) -> None:
        """Called by the HTTP layer when a job exceeds its budget."""
        with self._gate:
            self._counts["timeouts"] += 1

    def close(self) -> None:
        """Checkpoint every warm session and release the pools."""
        if self._closed:
            return
        self._closed = True
        self.store.clear(evict=True)
        self._jobs.shutdown(wait=True, cancel_futures=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "RepairService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Job bodies
    # ------------------------------------------------------------------
    def _repair_job(self, payload: dict) -> dict:
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        dataset = self._parse_dataset(payload)
        constraints = self._parse_constraints(payload)
        config = self._parse_config(payload)
        probe = RepairContext(dataset=dataset, constraints=constraints, config=config)
        key = SessionKey.for_context(probe)
        sid = key.session_id

        session = self.store.lookup(key)
        if session is not None:
            path = "warm"
        else:
            ctx = self._rehydrate(sid)
            if ctx is not None:
                path = "rehydrated"
            else:
                path = "cold"
                ctx = probe
            session = self.store.admit(key, ctx)

        with session.lock:
            ctx = session.ctx
            ctx.config = config
            if payload.get("recompile"):
                # New grounding knobs: drop the model (detection stays)
                # so the plan recompiles instead of warm-skipping.
                ctx.model = None
                ctx.weights = None
                ctx.marginals = None
                ctx.result = None
            started = time.perf_counter()
            if path == "cold":
                ctx = self._run_cold(session)
            else:
                ctx = self._run_plan(ctx, path)
                session.ctx = ctx
            elapsed = time.perf_counter() - started
        self._account(path, elapsed)
        if path != "warm":
            self._checkpoint(session)
        return self._response(sid, path, ctx, elapsed, payload)

    def _feedback_job(self, sid: str, payload: dict) -> dict:
        session = self._resident_session(sid)
        cells = payload.get("cells") if isinstance(payload, dict) else None
        if not isinstance(cells, list) or not cells:
            raise BadRequest(
                "feedback body must be "
                '{"cells": [{"tid": .., "attribute": .., "value": ..}, ..]}'
            )
        with session.lock:
            ctx = session.ctx
            if ctx.model is None:
                raise BadRequest(
                    f"session {sid} has no compiled model yet; POST /repair first"
                )
            wrapper = RepairSession.from_context(ctx)
            for spec in cells:
                cell, value = self._parse_feedback_cell(ctx, spec)
                try:
                    wrapper.feedback(cell, value)
                except KeyError as exc:
                    raise BadRequest(str(exc))
            started = time.perf_counter()
            with ctx.span("serve.request", route="feedback", session=sid):
                wrapper.rerun()
            self._trim_trace(ctx)
            elapsed = time.perf_counter() - started
        self._account("warm", elapsed)
        self._checkpoint(session)
        response = self._response(sid, "warm", ctx, elapsed, payload)
        response["feedback_count"] = wrapper.feedback_count
        return response

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def _run_cold(self, session: Session) -> RepairContext:
        """Full plan, preferring the worker pool, inline as fallback."""
        ctx = session.ctx
        pool = self._process_pool()
        if pool is not None:
            try:
                ctx = pool.submit(_run_cold_job, ctx).result()
                session.ctx = ctx
                return ctx
            except BrokenExecutor:
                log.warning("worker pool broke; falling back to inline repair")
                self._pool_broken = True
            except (TypeError, AttributeError, OSError) as exc:
                log.warning("cold job not poolable (%s); running inline", exc)
                self._pool_broken = True
        ctx = self._run_plan(ctx, "cold")
        session.ctx = ctx
        return ctx

    def _run_plan(self, ctx: RepairContext, path: str) -> RepairContext:
        """One plan run in-process, wrapped in a request span."""
        plan = RepairPlan.default()
        plan.validate(ctx)
        with ctx.span("serve.request", route="repair", path=path):
            ctx = plan.run(ctx)
        if ctx.engine is not None and path == "cold":
            # The warm path never grounds, so the engine only costs
            # memory between requests; drop it and rebuild on demand.
            ctx.engine.close()
            ctx.engine = None
        self._trim_trace(ctx)
        return ctx

    def _rehydrate(self, sid: str) -> RepairContext | None:
        if self.checkpoints is None:
            return None
        try:
            return self.checkpoints.load(sid)
        except CheckpointError as exc:
            log.warning("discarding bad checkpoint %s: %s", sid, exc)
            self.checkpoints.delete(sid)
            return None

    def _checkpoint(self, session: Session) -> None:
        if self.checkpoints is None:
            return
        try:
            self.checkpoints.save(session.sid, session.ctx)
        except CheckpointError as exc:
            log.warning("checkpoint of session %s failed: %s", session.sid, exc)

    def _on_evict(self, session: Session) -> None:
        self._checkpoint(session)
        ctx = session.ctx
        if ctx.engine is not None:
            ctx.engine.close()
            ctx.engine = None
        if ctx.tracer is not None:
            ctx.tracer.shutdown()
            ctx.tracer = None

    def _spawn_pool(self) -> None:
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:
            self._pool_broken = True
            return
        pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=mp)
        try:
            # One in-flight warmup per worker makes the executor fork
            # every process up front (it only spawns when no worker is
            # idle, so sequential no-ops would spawn just one).
            futures = [
                pool.submit(_pool_warmup, 0.05) for _ in range(self.workers)
            ]
            for future in futures:
                future.result(timeout=60)
        except Exception as exc:  # noqa: BLE001 - any failure → inline mode
            log.warning("worker pool failed to start (%s); running inline", exc)
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool_broken = True
            return
        self._pool = pool

    def _process_pool(self) -> ProcessPoolExecutor | None:
        if self._pool_broken:
            return None
        return self._pool

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    def _parse_dataset(self, payload: dict) -> Dataset:
        spec = payload.get("dataset")
        if not isinstance(spec, dict):
            raise BadRequest("payload needs a 'dataset' object")
        columns = spec.get("columns")
        rows = spec.get("rows")
        if not isinstance(columns, list) or not columns:
            raise BadRequest("'dataset.columns' must be a non-empty list")
        if not isinstance(rows, list):
            raise BadRequest("'dataset.rows' must be a list of rows")
        source = spec.get("source_column")
        if source is not None and source not in columns:
            raise BadRequest(f"source_column {source!r} is not a column")
        try:
            schema = Schema(
                [
                    Attribute(col, role="source" if col == source else "data")
                    for col in columns
                ]
            )
            cleaned = []
            for row in rows:
                if not isinstance(row, list) or len(row) != len(columns):
                    raise ValueError(
                        f"each row needs {len(columns)} values, got {row!r}"
                    )
                cleaned.append([None if value is None else str(value) for value in row])
            return Dataset(schema, cleaned, name=str(spec.get("name", "request")))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad dataset: {exc}")

    def _parse_constraints(self, payload: dict) -> list:
        texts = payload.get("constraints", [])
        fds = payload.get("fds", [])
        if not isinstance(texts, list) or not isinstance(fds, list):
            raise BadRequest("'constraints' and 'fds' must be lists of strings")
        constraints = []
        try:
            for text in texts:
                constraints.append(
                    parse_dc(str(text), sim_threshold=self.config.sim_threshold)
                )
            for text in fds:
                constraints.extend(parse_fd(str(text)).to_denial_constraints())
        except (DCParseError, ValueError) as exc:
            raise BadRequest(f"bad constraint: {exc}")
        if not constraints:
            raise BadRequest("payload needs 'constraints' and/or 'fds'")
        return constraints

    def _parse_config(self, payload: dict) -> HoloCleanConfig:
        overrides = payload.get("config", {})
        if not isinstance(overrides, dict):
            raise BadRequest("'config' must be an object of field overrides")
        for banned in (
            "serve_max_sessions",
            "serve_workers",
            "serve_checkpoint_dir",
            "serve_queue_depth",
            "serve_job_timeout",
        ):
            if banned in overrides:
                raise BadRequest(f"{banned!r} is operator-only, not per-request")
        if "source_entity_attributes" in overrides:
            overrides = dict(overrides)
            overrides["source_entity_attributes"] = tuple(
                overrides["source_entity_attributes"]
            )
        try:
            return self.config.with_(**overrides)
        except TypeError as exc:
            raise BadRequest(f"unknown config field: {exc}")
        except ValueError as exc:
            raise BadRequest(f"bad config: {exc}")

    @staticmethod
    def _parse_feedback_cell(ctx: RepairContext, spec) -> tuple[Cell, str]:
        if not isinstance(spec, dict):
            raise BadRequest(f"feedback cell must be an object, got {spec!r}")
        try:
            tid = int(spec["tid"])
            attribute = str(spec["attribute"])
            value = str(spec["value"])
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"bad feedback cell {spec!r}: {exc}")
        if attribute not in ctx.dataset.schema.names:
            raise BadRequest(f"unknown attribute {attribute!r}")
        if not 0 <= tid < ctx.dataset.num_tuples:
            raise BadRequest(f"tid {tid} out of range")
        return Cell(tid, attribute), value

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _resident_session(self, sid: str) -> Session:
        """The warm session, rehydrating from checkpoint if evicted."""
        session = self.store.get(sid)
        if session is None:
            ctx = self._rehydrate(sid)
            if ctx is None:
                raise NotFound(f"unknown session {sid!r}")
            session = self.store.admit(SessionKey.for_context(ctx), ctx)
            with self._gate:
                self._counts["rehydrated"] += 1
        return session

    def _admit(self) -> None:
        if self._closed:
            raise ServiceError("service is shut down")
        with self._gate:
            capacity = max(1, self.workers) + self.queue_depth
            if self._inflight >= capacity:
                self._counts["rejected"] += 1
                raise Saturated(
                    f"{self._inflight} jobs in flight (capacity {capacity}); "
                    f"retry shortly"
                )
            self._inflight += 1

    def _guarded(self, job, *args):
        try:
            return job(*args)
        except ServiceError:
            raise
        except Exception:
            with self._gate:
                self._counts["errors"] += 1
            raise
        finally:
            with self._gate:
                self._inflight -= 1
            self._sync_metrics()

    def _account(self, path: str, elapsed: float) -> None:
        with self._gate:
            self._counts["requests"] += 1
            self._counts[path] += 1
        self.metrics.extend("serve.job_seconds", [elapsed])
        self.metrics.label("serve.last_path", path)

    def _sync_metrics(self) -> None:
        with self._gate:
            counts = dict(self._counts)
            inflight = self._inflight
        store = self.store.stats()
        self.metrics.gauge("serve.sessions", store["sessions"])
        self.metrics.gauge("serve.session_hits", store["hits"])
        self.metrics.gauge("serve.session_misses", store["misses"])
        self.metrics.gauge("serve.evictions_total", store["evictions"])
        self.metrics.gauge("serve.inflight", inflight)
        self.metrics.gauge("serve.requests_total", counts["requests"])
        self.metrics.gauge("serve.cold_total", counts["cold"])
        self.metrics.gauge("serve.warm_total", counts["warm"])
        self.metrics.gauge("serve.rehydrated_total", counts["rehydrated"])
        self.metrics.gauge("serve.rejected_total", counts["rejected"])
        self.metrics.gauge("serve.errors_total", counts["errors"])
        self.metrics.gauge("serve.timeouts_total", counts["timeouts"])

    @staticmethod
    def _trim_trace(ctx: RepairContext) -> None:
        tracer = ctx.tracer
        if tracer is not None and len(tracer.roots) > SPAN_ROOT_CAP:
            del tracer.roots[: len(tracer.roots) - SPAN_ROOT_CAP]

    def _response(
        self, sid: str, path: str, ctx: RepairContext, elapsed: float, payload: dict
    ) -> dict:
        result = ctx.result
        repairs = []
        if result is not None:
            for cell, inference in sorted(result.repairs.items()):
                repairs.append(
                    {
                        "tid": cell.tid,
                        "attribute": cell.attribute,
                        "old": inference.init_value,
                        "new": inference.chosen_value,
                        "confidence": round(inference.confidence, 6),
                    }
                )
        response = {
            "session": sid,
            "path": path,
            "elapsed_seconds": elapsed,
            "stage_status": dict(ctx.stage_status),
            "timings": ctx.phase_timings(),
            "noisy_cells": len(result.inferences) if result is not None else 0,
            "num_repairs": result.num_repairs if result is not None else 0,
            "repairs": repairs,
        }
        if payload.get("report") and result is not None and result.report is not None:
            response["report"] = result.report.to_dict()
        return response
