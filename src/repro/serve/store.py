"""Warm-session store: an LRU cache of repair contexts keyed by content.

The serving layer amortizes the expensive detect + compile stages
across requests: the first request for a (dataset, constraint-set)
pair pays them once, and every later request — feedback rounds,
marginal queries, re-inference under new learning knobs — re-enters
the retained :class:`~repro.core.stages.RepairContext` through the
staged plan, where detect and compile skip themselves because their
artifacts are already present.

Sessions are keyed by *content*, not by caller: the
:class:`SessionKey` folds the dataset fingerprint and the
constraint-set fingerprint (:mod:`repro.obs.fingerprint`), so two
clients uploading the same problem share one warm context, and the
session id is deterministic — a client can compute it before its
first request.

Capacity is bounded: admitting a session beyond ``capacity`` evicts
the least-recently-used one, handing it to the ``on_evict`` callback
(the service checkpoints it to disk there, then releases its engine).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from repro.core.stages import RepairContext
from repro.obs.fingerprint import combine_fingerprints


class SessionKey(NamedTuple):
    """Content identity of a session.

    ``dataset`` and ``constraints`` are the short content hashes from
    :mod:`repro.obs.fingerprint`.  The config fingerprint is
    deliberately *not* part of the key: re-running a session under new
    learning knobs is exactly the warm path the store exists for.
    """

    dataset: str
    constraints: str

    @property
    def session_id(self) -> str:
        """Deterministic session id derived from the content hashes."""
        return combine_fingerprints(self.dataset, self.constraints)

    @classmethod
    def for_context(cls, ctx: RepairContext) -> "SessionKey":
        parts = ctx.fingerprints()
        return cls(dataset=parts["dataset"], constraints=parts["constraints"])


@dataclass
class Session:
    """One warm repair context plus its serving bookkeeping."""

    sid: str
    key: SessionKey
    ctx: RepairContext
    created_at: float = field(default_factory=time.time)
    last_used: float = 0.0
    requests: int = 0
    #: Serializes jobs touching this context — stage plans mutate it,
    #: so two concurrent requests for the same session must queue.
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if not self.last_used:
            self.last_used = self.created_at

    def touch(self) -> None:
        self.last_used = time.time()
        self.requests += 1


class SessionStore:
    """A thread-safe LRU cache of live :class:`Session` objects.

    ``on_evict`` (if given) receives every session displaced by
    capacity pressure or :meth:`clear(evict=True)` — but *not* sessions
    removed explicitly via :meth:`remove`, which is the "purge, don't
    preserve" path.
    """

    def __init__(
        self,
        capacity: int = 16,
        on_evict: Callable[[Session], None] | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self.on_evict = on_evict
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, sid: str) -> Session | None:
        """The session with this id, marked most-recently-used."""
        with self._lock:
            session = self._sessions.get(sid)
            if session is None:
                self.misses += 1
                return None
            self._sessions.move_to_end(sid)
            self.hits += 1
            session.touch()
            return session

    def lookup(self, key: SessionKey) -> Session | None:
        """The session for this content key, if warm."""
        return self.get(key.session_id)

    def peek(self, sid: str) -> Session | None:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            return self._sessions.get(sid)

    def admit(self, key: SessionKey, ctx: RepairContext) -> Session:
        """Insert (or replace) the session for this key.

        Returns the live session; evicts the least-recently-used entry
        when the insert pushes the store past capacity.
        """
        sid = key.session_id
        evicted: list[Session] = []
        with self._lock:
            old = self._sessions.pop(sid, None)
            if old is not None:
                evicted.append(old)
            session = Session(sid=sid, key=key, ctx=ctx)
            self._sessions[sid] = session
            while len(self._sessions) > self.capacity:
                _, displaced = self._sessions.popitem(last=False)
                self.evictions += 1
                evicted.append(displaced)
        if self.on_evict is not None:
            for session_out in evicted:
                self.on_evict(session_out)
        return session

    def remove(self, sid: str) -> Session | None:
        """Drop the session without invoking ``on_evict``."""
        with self._lock:
            return self._sessions.pop(sid, None)

    def evict(self, sid: str) -> Session | None:
        """Drop the session through the ``on_evict`` callback."""
        with self._lock:
            session = self._sessions.pop(sid, None)
            if session is not None:
                self.evictions += 1
        if session is not None and self.on_evict is not None:
            self.on_evict(session)
        return session

    def clear(self, evict: bool = False) -> None:
        """Drop every session (through ``on_evict`` when ``evict``)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        if evict and self.on_evict is not None:
            for session in sessions:
                self.on_evict(session)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, sid: str) -> bool:
        with self._lock:
            return sid in self._sessions

    def session_ids(self) -> list[str]:
        """Resident ids, least- to most-recently-used."""
        with self._lock:
            return list(self._sessions)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
