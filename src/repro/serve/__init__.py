r"""Repair-as-a-service: the serving subsystem over the staged API.

The staged Detect→Compile→Learn→Infer→Apply plan
(:mod:`repro.core.stages`) was built so that a service could amortize
the expensive grounding work across requests; this package is that
service:

* :mod:`~repro.serve.store` — LRU :class:`SessionStore` of warm
  :class:`~repro.core.stages.RepairContext`\ s, keyed by dataset +
  constraint-set content fingerprints.
* :mod:`~repro.serve.checkpoint` — per-stage :class:`CheckpointStore`
  so evicted or restarted sessions rehydrate from disk without
  re-grounding, marginal-identical to the in-memory run.
* :mod:`~repro.serve.service` — :class:`RepairService`, the
  transport-independent core: request parsing, cold/warm/rehydrated
  execution paths, a bounded worker pool, admission control, and the
  ``serve.*`` metrics.
* :mod:`~repro.serve.server` — :class:`RepairServer`, the
  stdlib-asyncio HTTP JSON front end (``python -m repro serve``).

See ``docs/serving.md`` for the API reference and capacity model.
"""

from __future__ import annotations

from repro.serve.checkpoint import CheckpointError, CheckpointStore
from repro.serve.server import RepairServer
from repro.serve.service import (
    BadRequest,
    NotFound,
    RepairService,
    Saturated,
    ServiceError,
)
from repro.serve.store import Session, SessionKey, SessionStore

__all__ = [
    "BadRequest",
    "CheckpointError",
    "CheckpointStore",
    "NotFound",
    "RepairServer",
    "RepairService",
    "Saturated",
    "ServiceError",
    "Session",
    "SessionKey",
    "SessionStore",
]
