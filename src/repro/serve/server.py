"""Stdlib-asyncio HTTP front end for :class:`~repro.serve.service.RepairService`.

A deliberately small HTTP/1.1 JSON server (``asyncio.start_server``,
no frameworks — the container ships only the scientific stack):

==========  =================================  =======================
method      path                               behaviour
==========  =================================  =======================
``POST``    ``/repair``                        run/re-enter a repair
``POST``    ``/sessions/{sid}/feedback``       fold in verified cells
``GET``     ``/sessions/{sid}/marginals``      instant marginal read
``DELETE``  ``/sessions/{sid}``                evict (``?checkpoint=0``
                                               purges the disk copy)
``GET``     ``/healthz``                       liveness + capacity
``GET``     ``/metricsz``                      ``serve.*`` metrics dump
==========  =================================  =======================

Job requests ride :meth:`RepairService.submit_repair` /
``submit_feedback`` futures bridged into the event loop with
``asyncio.wrap_future``, so the loop stays free while repairs run on
the worker pool; ``serve_job_timeout`` bounds each job
(``asyncio.wait_for`` → 504), and a saturated pool surfaces as
429 with a ``Retry-After`` header.  Error mapping is uniform:
:class:`~repro.serve.service.ServiceError` carries its own status,
``ValueError`` (bad payloads, invalid plan re-entry) is a 400, and
anything else is a 500.

``python -m repro serve`` (see :func:`main`) is the operator entry
point; ``port=0`` binds an ephemeral port, which tests and the load
benchmark use.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re

from repro.core.config import HoloCleanConfig
from repro.obs import add_verbosity_flags, configure, get_logger, verbosity_from
from repro.serve.service import RepairService, Saturated, ServiceError

log = get_logger("serve.http")

#: Request body ceiling (datasets travel inline as JSON rows).
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Request line + headers ceiling.
MAX_HEADER_BYTES = 64 * 1024

_SESSION_ROUTE = re.compile(r"^/sessions/([0-9a-f]{6,64})(/[a-z]+)?$")


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class RepairServer:
    """One service bound to one listening socket."""

    def __init__(
        self, service: RepairService, host: str = "127.0.0.1", port: int = 8080
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("serving repairs on http://%s:%d", self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        headers: dict[str, str] = {}
        try:
            try:
                method, path, query, body = await self._read_request(reader)
                status, payload = await self._dispatch(method, path, query, body)
            except _HttpError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except Saturated as exc:
                status, payload = exc.status, {"error": str(exc)}
                headers["Retry-After"] = str(exc.retry_after)
            except ServiceError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except ValueError as exc:
                status, payload = 400, {"error": str(exc)}
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                log.exception("unhandled error serving request")
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large")
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        path, _, raw_query = target.partition("?")
        query = {}
        for pair in raw_query.split("&"):
            if "=" in pair:
                name, _, value = pair.partition("=")
                query[name] = value
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise _HttpError(400, f"request body is not valid JSON: {exc}")
        return method.upper(), path, query, body

    async def _dispatch(self, method: str, path: str, query: dict, body):
        if path == "/healthz":
            self._require(method, "GET")
            return 200, self.service.health()
        if path == "/metricsz":
            self._require(method, "GET")
            return 200, self.service.metrics_snapshot()
        if path == "/repair":
            self._require(method, "POST")
            return 200, await self._job(self.service.submit_repair(body))
        match = _SESSION_ROUTE.match(path)
        if match:
            sid, action = match.group(1), match.group(2)
            if action == "/feedback":
                self._require(method, "POST")
                return 200, await self._job(self.service.submit_feedback(sid, body))
            if action == "/marginals":
                self._require(method, "GET")
                tid = int(query["tid"]) if "tid" in query else None
                attribute = query.get("attribute")
                payload = await asyncio.get_running_loop().run_in_executor(
                    None, lambda: self.service.marginals(sid, tid, attribute)
                )
                return 200, payload
            if action is None:
                self._require(method, "DELETE")
                keep = query.get("checkpoint", "1") not in ("0", "false")
                return 200, self.service.delete_session(sid, checkpoint=keep)
        raise _HttpError(404, f"no route for {method} {path}")

    async def _job(self, future) -> dict:
        """Await a service future with the configured per-job budget."""
        timeout = self.service.config.serve_job_timeout or None
        wrapped = asyncio.wrap_future(future)
        try:
            return await asyncio.wait_for(wrapped, timeout)
        except asyncio.TimeoutError:
            future.cancel()
            self.service.note_timeout()
            raise _HttpError(504, f"job exceeded {timeout:.0f}s budget")
        except asyncio.CancelledError:
            future.cancel()  # client disconnected; stop queued work
            raise

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected} for this route")

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict[str, str],
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve HoloClean repairs over HTTP: warm session "
        "store, per-stage checkpoints, bounded worker pool",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listening port (0 picks an ephemeral one)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=16, help="LRU session-store capacity"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="repair worker processes (0 = inline)"
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for session checkpoints (omit to disable rehydration)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="queued jobs tolerated beyond the worker "
        "capacity before shedding load (429)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=300.0,
        help="per-job budget in seconds (0 = unlimited)",
    )
    add_verbosity_flags(parser)
    return parser


async def _run(server: RepairServer) -> None:
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro serve``: run the HTTP repair service."""
    args = build_parser().parse_args(argv)
    configure(verbosity_from(args))
    config = HoloCleanConfig(
        serve_max_sessions=args.max_sessions,
        serve_workers=args.workers,
        serve_checkpoint_dir=args.checkpoint_dir,
        serve_queue_depth=args.queue_depth,
        serve_job_timeout=args.job_timeout,
    )
    server = RepairServer(RepairService(config), host=args.host, port=args.port)
    try:
        asyncio.run(_run(server))
    except KeyboardInterrupt:
        log.info("shutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
