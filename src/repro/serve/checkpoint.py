"""Per-stage session checkpoints: repair state that survives eviction.

A checkpoint captures everything needed to rebuild a warm
:class:`~repro.core.stages.RepairContext` except the two members that
are cheap to rebuild and impossible to pickle — the grounding
:class:`~repro.engine.Engine` (memory-mapped columnar state, rebuilt
lazily by ``ctx.ensure_engine()``) and the
:class:`~repro.obs.trace.Tracer` (live spans).  Everything else is
plain Python + NumPy and round-trips through :mod:`pickle` exactly,
which is what makes rehydrated sessions *marginal-identical* to the
in-memory session they were serialized from.

On-disk layout, one directory per session id::

    <root>/<sid>/
        meta.json     format version, content fingerprints, stage list
        inputs.pkl    dataset, constraints, config, feedback, dictionaries
        detect.pkl    DetectionResult
        compile.pkl   CompiledModel
        learn.pkl     learned weights + training losses
        infer.pkl     marginals

Stage files are written only for artifacts present on the context, so
a session checkpointed mid-pipeline rehydrates mid-pipeline and the
staged plan resumes from exactly where it stopped.  Writes go to a
temporary sibling directory first and are swapped in with a rename,
so a crash mid-save leaves the previous checkpoint intact.

Rehydration is verified: the loaded context's content fingerprints
must match the ones stamped at save time, and a loaded
:class:`~repro.core.compiler.CompiledModel` must reproduce its saved
:meth:`~repro.core.compiler.CompiledModel.content_fingerprint` — a
checkpoint written for one problem cannot silently resurrect another.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from pathlib import Path

from repro.core.stages import RepairContext
from repro.obs import get_logger

log = get_logger("serve.checkpoint")

#: Bump when the on-disk layout changes; mismatched checkpoints are
#: rejected (the session simply pays a cold run).
FORMAT_VERSION = 1

#: Stage name → the context artifacts serialized in that stage's file.
STAGE_ARTIFACTS = (
    ("detect", ("detection",)),
    ("compile", ("model",)),
    ("learn", ("weights", "losses")),
    ("infer", ("marginals",)),
)

#: Context input fields serialized together in ``inputs.pkl``.
INPUT_FIELDS = (
    "dataset",
    "constraints",
    "config",
    "dictionaries",
    "matching_dependencies",
    "extra_detectors",
    "feedback",
)


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or verified."""


class CheckpointStore:
    """Reads and writes session checkpoints under one root directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path(self, sid: str) -> Path:
        return self.root / sid

    def has(self, sid: str) -> bool:
        return (self.path(sid) / "meta.json").is_file()

    def session_ids(self) -> list[str]:
        """Ids of every checkpoint present on disk, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / "meta.json").is_file()
        )

    # ------------------------------------------------------------------
    def save(self, sid: str, ctx: RepairContext) -> Path:
        """Serialize the context's inputs and per-stage artifacts.

        Atomic at directory granularity: readers either see the old
        checkpoint or the complete new one, never a half-written mix.
        """
        final = self.path(sid)
        tmp = self.root / f".{sid}.tmp-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            stages: list[str] = []
            inputs = {name: getattr(ctx, name) for name in INPUT_FIELDS}
            self._dump(tmp / "inputs.pkl", inputs)
            for stage, artifacts in STAGE_ARTIFACTS:
                payload = {name: getattr(ctx, name) for name in artifacts}
                if payload[artifacts[0]] is None:
                    continue
                self._dump(tmp / f"{stage}.pkl", payload)
                stages.append(stage)
            meta = {
                "version": FORMAT_VERSION,
                "sid": sid,
                "fingerprints": ctx.fingerprints(),
                "model": (
                    ctx.model.content_fingerprint() if ctx.model is not None else None
                ),
                "stages": stages,
            }
            (tmp / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
            if final.exists():
                shutil.rmtree(final)
            tmp.rename(final)
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return final

    def load(self, sid: str) -> RepairContext | None:
        """Rebuild a context from its checkpoint (``None`` if absent).

        The engine and tracer come back ``None`` and are rebuilt lazily
        on first use; everything else — including accumulated feedback —
        is restored exactly as saved.
        """
        directory = self.path(sid)
        meta_path = directory / "meta.json"
        if not meta_path.is_file():
            return None
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint meta {meta_path}: {exc}")
        if meta.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {sid} has format version {meta.get('version')!r}, "
                f"expected {FORMAT_VERSION}"
            )
        inputs = self._load(directory / "inputs.pkl")
        ctx = RepairContext(**inputs)
        for stage, artifacts in STAGE_ARTIFACTS:
            stage_path = directory / f"{stage}.pkl"
            if not stage_path.is_file():
                continue
            payload = self._load(stage_path)
            for name in artifacts:
                if name in payload:
                    setattr(ctx, name, payload[name])
        self._verify(sid, meta, ctx)
        return ctx

    def delete(self, sid: str) -> bool:
        """Remove the checkpoint from disk (False if none existed)."""
        directory = self.path(sid)
        if not directory.exists():
            return False
        shutil.rmtree(directory)
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def _dump(path: Path, payload: dict) -> None:
        try:
            with path.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise CheckpointError(f"cannot serialize {path.name}: {exc}")

    @staticmethod
    def _load(path: Path) -> dict:
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
            raise CheckpointError(f"cannot deserialize {path}: {exc}")

    @staticmethod
    def _verify(sid: str, meta: dict, ctx: RepairContext) -> None:
        saved = meta.get("fingerprints", {})
        current = ctx.fingerprints()
        if saved != current:
            raise CheckpointError(
                f"checkpoint {sid} failed fingerprint verification: "
                f"saved {saved}, rehydrated {current}"
            )
        saved_model = meta.get("model")
        if ctx.model is not None and saved_model is not None:
            current_model = ctx.model.content_fingerprint()
            if current_model != saved_model:
                raise CheckpointError(
                    f"checkpoint {sid} model fingerprint mismatch: "
                    f"saved {saved_model}, rehydrated {current_model}"
                )
