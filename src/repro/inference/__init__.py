"""Probabilistic inference engine (the DeepDive substrate).

The paper runs its models on DeepDive v0.9 [37]: a declarative engine that
grounds DDlog rules into a factor graph, learns tied weights by SGD over
the evidence likelihood, and estimates marginals by Gibbs sampling.  This
package reimplements the parts HoloClean needs:

* :class:`FeatureSpace` / :class:`FeatureMatrix` — tied weights and sparse
  per-(variable, candidate) features, the groundings of unary inference
  rules such as ``Value?(t,a,d) :- HasFeature(t,a,f) weight = w(d,f)``.
* :class:`SoftmaxTrainer` — empirical-risk minimisation over the evidence
  variables (Section 2.2, "Data Repairing") with full-batch Adam; for the
  relaxed model of Section 5.2 the variables are independent, so the
  resulting per-variable softmax marginals are *exact*.
* :class:`FactorGraph` + :class:`GibbsSampler` — grounded constraint
  factors (Algorithm 1) with constant weight, sampled to estimate
  marginals when denial constraints are kept as correlations.
"""

from repro.inference.features import FeatureSpace, FeatureMatrix, FeatureMatrixBuilder
from repro.inference.variables import VariableInfo, VariableBlock
from repro.inference.factor_graph import ConstraintFactor, FactorGraph
from repro.inference.softmax import SoftmaxTrainer, TrainingResult
from repro.inference.gibbs import GibbsSampler, GibbsResult
from repro.inference.numerics import segment_softmax, segment_logsumexp

__all__ = [
    "FeatureSpace",
    "FeatureMatrix",
    "FeatureMatrixBuilder",
    "VariableInfo",
    "VariableBlock",
    "ConstraintFactor",
    "FactorGraph",
    "SoftmaxTrainer",
    "TrainingResult",
    "GibbsSampler",
    "GibbsResult",
    "segment_softmax",
    "segment_logsumexp",
]
