"""Segmented numeric kernels shared by the learner and the sampler.

Variables own contiguous row ranges of a flat score vector (one row per
candidate value); these helpers compute numerically-stable softmax and
log-sum-exp per segment using ``reduceat``.
"""

from __future__ import annotations

import numpy as np


def segment_sizes(starts: np.ndarray) -> np.ndarray:
    """Segment lengths from a boundary array ``starts`` (len = #segments+1)."""
    return np.diff(starts)


def segment_softmax(scores: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Softmax within each segment of ``scores``.

    ``starts`` has one entry per segment plus a terminal sentinel equal to
    ``len(scores)``.  Every segment must be non-empty (variables always
    have at least one candidate).
    """
    if len(starts) < 2:
        return np.empty(0, dtype=np.float64)
    sizes = np.diff(starts)
    if np.any(sizes <= 0):
        raise ValueError("segments must be non-empty")
    maxima = np.maximum.reduceat(scores, starts[:-1])
    shifted = scores - np.repeat(maxima, sizes)
    np.exp(shifted, out=shifted)
    sums = np.add.reduceat(shifted, starts[:-1])
    return shifted / np.repeat(sums, sizes)


def segment_logsumexp(scores: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Log-sum-exp per segment (one value per segment)."""
    if len(starts) < 2:
        return np.empty(0, dtype=np.float64)
    sizes = np.diff(starts)
    if np.any(sizes <= 0):
        raise ValueError("segments must be non-empty")
    maxima = np.maximum.reduceat(scores, starts[:-1])
    shifted = np.exp(scores - np.repeat(maxima, sizes))
    sums = np.add.reduceat(shifted, starts[:-1])
    return maxima + np.log(sums)


def softmax(scores: np.ndarray) -> np.ndarray:
    """Plain stable softmax over a 1-D array."""
    m = scores.max()
    e = np.exp(scores - m)
    return e / e.sum()
