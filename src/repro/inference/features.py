"""Tied weights and sparse per-candidate feature storage.

DeepDive's inference rules carry *parameterised weights* — e.g.
``weight = w(d, f)`` ties one learnable scalar to every distinct
``(candidate value, feature)`` combination.  :class:`FeatureSpace` maps
arbitrary hashable weight keys to dense indices; :class:`FeatureMatrix`
stores, for every (variable, candidate) row, the sparse vector of feature
values that ground the unary rules of Section 4.2.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np


class FeatureSpace:
    """Bidirectional mapping between weight keys and dense indices.

    Some weights are *fixed constants* rather than learnable parameters —
    the minimality prior ("weight w is a positive constant indicating the
    strength of this prior", Section 4.2) and Algorithm 1's constant DC
    factor weight.  :meth:`set_fixed` pins such weights; trainers must
    initialise them to the pinned value and exclude them from updates.
    """

    def __init__(self):
        self._index: dict[Hashable, int] = {}
        self._keys: list[Hashable] = []
        self._fixed: dict[int, float] = {}
        self._frozen = False

    def index(self, key: Hashable) -> int:
        """Index for ``key``, allocating a new one unless frozen."""
        idx = self._index.get(key)
        if idx is None:
            if self._frozen:
                raise KeyError(f"feature space is frozen; unknown key {key!r}")
            idx = len(self._keys)
            self._index[key] = idx
            self._keys.append(key)
        return idx

    def get(self, key: Hashable) -> int | None:
        return self._index.get(key)

    def key(self, idx: int) -> Hashable:
        return self._keys[idx]

    def set_fixed(self, key: Hashable, value: float) -> int:
        """Pin ``key``'s weight to a constant; returns its index."""
        idx = self.index(key)
        self._fixed[idx] = float(value)
        return idx

    @property
    def fixed_weights(self) -> dict[int, float]:
        """Index → pinned value for all constant weights."""
        return dict(self._fixed)

    def freeze(self) -> None:
        """Disallow new keys (used after grounding, before learning)."""
        self._frozen = True

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index


class FeatureMatrix:
    """Immutable CSR-ish storage of per-(variable, candidate) features.

    Attributes
    ----------
    var_row_start:
        ``int64[num_vars + 1]`` — rows of variable ``v`` are
        ``var_row_start[v] : var_row_start[v+1]``; row order follows
        candidate order.
    indices / values / row_ptr:
        Flat sparse entries: row ``r`` owns entries
        ``row_ptr[r] : row_ptr[r+1]``.
    """

    def __init__(self, var_row_start: np.ndarray, indices: np.ndarray,
                 values: np.ndarray, row_ptr: np.ndarray, num_features: int):
        self.var_row_start = var_row_start
        self.indices = indices
        self.values = values
        self.row_ptr = row_ptr
        self.num_features = num_features
        self._row_ids: np.ndarray | None = None

    @property
    def num_vars(self) -> int:
        return len(self.var_row_start) - 1

    @property
    def num_rows(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def num_entries(self) -> int:
        return len(self.indices)

    def entry_row_ids(self) -> np.ndarray:
        """Row id of every sparse entry (cached)."""
        if self._row_ids is None:
            lengths = np.diff(self.row_ptr)
            self._row_ids = np.repeat(
                np.arange(self.num_rows, dtype=np.int64), lengths)
        return self._row_ids

    def scores(self, weights: np.ndarray) -> np.ndarray:
        """θ·x per row: the unary potential of every candidate."""
        if len(weights) != self.num_features:
            raise ValueError(
                f"weight vector has {len(weights)} entries, "
                f"feature space has {self.num_features}")
        contributions = weights[self.indices] * self.values
        return np.bincount(self.entry_row_ids(), weights=contributions,
                           minlength=self.num_rows).astype(np.float64)

    def scores_for_rows(self, rows: np.ndarray,
                        weights: np.ndarray) -> np.ndarray:
        """θ·x for the given rows only, in the given row order.

        Gathers just those rows' sparse entries instead of scoring the
        whole matrix — the marginal-inference fast path when only a few
        query variables are requested.  Per-row entries are summed in
        storage order, so each score is bit-identical to the matching
        entry of :meth:`scores`.
        """
        if len(weights) != self.num_features:
            raise ValueError(
                f"weight vector has {len(weights)} entries, "
                f"feature space has {self.num_features}")
        from repro.engine.ops import expand_ranges

        rows = np.asarray(rows, dtype=np.int64)
        counts = self.row_ptr[rows + 1] - self.row_ptr[rows]
        source = expand_ranges(self.row_ptr[rows], counts)
        if not len(source):
            return np.zeros(len(rows), dtype=np.float64)
        contributions = weights[self.indices[source]] * self.values[source]
        compact_ids = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
        return np.bincount(compact_ids, weights=contributions,
                           minlength=len(rows)).astype(np.float64)

    def rows_of(self, var: int) -> range:
        return range(int(self.var_row_start[var]), int(self.var_row_start[var + 1]))

    def var_scores(self, var: int, weights: np.ndarray) -> np.ndarray:
        """Unary scores for one variable only (used in unit tests)."""
        out = []
        for r in self.rows_of(var):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            out.append(float(np.dot(weights[self.indices[lo:hi]],
                                    self.values[lo:hi])))
        return np.asarray(out)


class FeatureMatrixBuilder:
    """Incremental builder used during grounding.

    Usage::

        builder = FeatureMatrixBuilder(space)
        v = builder.start_variable(num_candidates)
        builder.add(v, candidate_index, key, value)
        matrix = builder.build()

    The vectorized featurization path lands whole entry batches at once
    through :meth:`add_entries` instead; both mechanisms may be mixed and
    the built matrix orders each row's entries chronologically, exactly
    as repeated :meth:`add` calls would.
    """

    def __init__(self, space: FeatureSpace):
        self.space = space
        self._var_sizes: list[int] = []
        self._rows: list[list[tuple[int, int, float]]] = []
        self._row_base: list[int] = []
        #: Batched entries: (row ids, insertion seqs, key indices, values).
        self._batches: list[tuple[np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray]] = []
        self._seq = 0  # global insertion counter across add / add_entries

    def start_variable(self, num_candidates: int) -> int:
        """Register a variable with the given domain size; returns its id."""
        if num_candidates <= 0:
            raise ValueError("variables need at least one candidate")
        vid = len(self._var_sizes)
        self._row_base.append(len(self._rows))
        self._var_sizes.append(num_candidates)
        for _ in range(num_candidates):
            self._rows.append([])
        return vid

    def start_variables(self, sizes: list[int]) -> int:
        """Register a block of variables at once; returns the first id.

        Equivalent to calling :meth:`start_variable` for each size in
        order (ids are contiguous from the returned first id), letting
        the compiler lay out a whole query / evidence block without one
        Python call per variable.
        """
        sizes = [int(size) for size in sizes]
        if any(size <= 0 for size in sizes):
            raise ValueError("variables need at least one candidate")
        first = len(self._var_sizes)
        base = len(self._rows)
        for size in sizes:
            self._row_base.append(base)
            base += size
        self._var_sizes.extend(sizes)
        self._rows.extend([] for _ in range(base - len(self._rows)))
        return first

    def add(self, var: int, candidate: int, key, value: float) -> None:
        """Attach ``feature(key) = value`` to one candidate of a variable."""
        if not 0 <= candidate < self._var_sizes[var]:
            raise IndexError(
                f"candidate {candidate} out of range for variable {var} "
                f"(domain size {self._var_sizes[var]})")
        self._rows[self._row_base[var] + candidate].append(
            (self._seq, self.space.index(key), float(value)))
        self._seq += 1

    def add_entries(self, var_ids: np.ndarray, cand_idx: np.ndarray,
                    keys, values: np.ndarray) -> None:
        """Attach a whole batch of entries at once (the vectorized path).

        ``keys`` is either an integer array of feature-space indices the
        caller already allocated (in the correct first-seen order) or a
        sequence of hashable weight keys resolved here in batch order.
        Entries keep their batch order, so per-row entry order matches
        what equivalent sequential :meth:`add` calls would produce.
        """
        var_ids = np.asarray(var_ids, dtype=np.int64)
        cand_idx = np.asarray(cand_idx, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        # Validate everything before touching the feature space: a rejected
        # call must not allocate keys (that would permanently shift the
        # space's allocation order).
        if not (len(var_ids) == len(cand_idx) == len(values) == len(keys)):
            raise ValueError("add_entries arrays must align")
        if not len(var_ids):
            return
        sizes = np.asarray(self._var_sizes, dtype=np.int64)
        if int(var_ids.min()) < 0 or int(var_ids.max()) >= len(sizes):
            raise IndexError("variable id out of range")
        if np.any((cand_idx < 0) | (cand_idx >= sizes[var_ids])):
            raise IndexError("a candidate index is outside its domain")
        if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
            key_idx = keys.astype(np.int64, copy=False)
            if int(key_idx.min()) < 0 or int(key_idx.max()) >= len(self.space):
                raise IndexError("feature index outside the feature space")
        else:
            key_idx = np.fromiter((self.space.index(k) for k in keys),
                                  dtype=np.int64, count=len(keys))
        base = np.asarray(self._row_base, dtype=np.int64)
        row_ids = base[var_ids] + cand_idx
        seqs = np.arange(self._seq, self._seq + len(row_ids), dtype=np.int64)
        self._seq += len(row_ids)
        self._batches.append((row_ids, seqs, key_idx, values))

    @property
    def num_vars(self) -> int:
        return len(self._var_sizes)

    def build(self) -> FeatureMatrix:
        var_row_start = np.zeros(len(self._var_sizes) + 1, dtype=np.int64)
        np.cumsum(self._var_sizes, out=var_row_start[1:])
        if self._batches:
            return self._build_merged(var_row_start)
        row_ptr = np.zeros(len(self._rows) + 1, dtype=np.int64)
        np.cumsum([len(r) for r in self._rows], out=row_ptr[1:])
        total = int(row_ptr[-1])
        indices = np.empty(total, dtype=np.int64)
        values = np.empty(total, dtype=np.float64)
        pos = 0
        for row in self._rows:
            for _seq, idx, val in row:
                indices[pos] = idx
                values[pos] = val
                pos += 1
        return FeatureMatrix(var_row_start, indices, values, row_ptr,
                             num_features=len(self.space))

    def _build_merged(self, var_row_start: np.ndarray) -> FeatureMatrix:
        """Merge per-entry and batched additions into one CSR matrix.

        Entries are grouped by row and ordered chronologically within a
        row (via the global insertion counter), which is exactly the
        layout sequential :meth:`add` calls produce.
        """
        rows_l, seqs_l, keys_l, vals_l = [], [], [], []
        counts = [len(row) for row in self._rows]
        total = sum(counts)
        if total:
            # Column-wise extraction: each array fills straight from a
            # generator pass over the row lists, with no intermediate
            # list-of-tuples materialisation.
            rows_l.append(np.repeat(
                np.arange(len(self._rows), dtype=np.int64), counts))
            seqs_l.append(np.fromiter(
                (entry[0] for row in self._rows for entry in row),
                dtype=np.int64, count=total))
            keys_l.append(np.fromiter(
                (entry[1] for row in self._rows for entry in row),
                dtype=np.int64, count=total))
            vals_l.append(np.fromiter(
                (entry[2] for row in self._rows for entry in row),
                dtype=np.float64, count=total))
        for row_ids, seqs, key_idx, values in self._batches:
            rows_l.append(row_ids)
            seqs_l.append(seqs)
            keys_l.append(key_idx)
            vals_l.append(values)
        rows = np.concatenate(rows_l)
        seqs = np.concatenate(seqs_l)
        keys = np.concatenate(keys_l)
        vals = np.concatenate(vals_l)
        order = np.lexsort((seqs, rows))
        row_ptr = np.zeros(len(self._rows) + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=len(self._rows)),
                  out=row_ptr[1:])
        return FeatureMatrix(var_row_start, keys[order], vals[order],
                             row_ptr, num_features=len(self.space))
