"""Gibbs sampling over grounded factor graphs.

Used when denial constraints are kept as factors (the DC-Factors variants
of Section 6.3.1).  Each sweep resamples every query variable from its
conditional — unary feature scores plus the weighted contributions of
adjacent constraint factors.  With no factors the chain mixes immediately
(independent variables, the O(n log n) regime of Section 5.2); with
factors, burn-in sweeps are discarded before marginal counting starts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inference.factor_graph import FactorGraph
from repro.obs.trace import deep_span


@dataclass
class GibbsResult:
    """Estimated marginals and the resulting MAP assignment.

    ``moves`` / ``samples`` summarise chain mobility: of the
    ``samples`` single-site draws taken (burn-in included), ``moves``
    landed on a value different from the variable's previous state.
    Their ratio is the acceptance-style diagnostic the run report
    publishes as ``infer.gibbs_move_rate``.
    """

    marginals: dict[int, np.ndarray]
    sweeps: int
    moves: int = 0
    samples: int = 0

    @property
    def move_rate(self) -> float:
        """Fraction of draws that changed the variable's value."""
        return self.moves / self.samples if self.samples else 0.0

    def map_index(self, vid: int) -> int:
        return int(np.argmax(self.marginals[vid]))


class GibbsSampler:
    """Single-site Gibbs sampler with fixed evidence.

    Parameters
    ----------
    graph:
        The grounded factor graph.
    unary_weights:
        Learned weights for the unary feature matrix.
    seed:
        RNG seed (sampling is deterministic given the seed).
    """

    def __init__(self, graph: FactorGraph, unary_weights: np.ndarray,
                 seed: int = 0):
        self.graph = graph
        self.rng = np.random.default_rng(seed)
        self._unary = graph.unary_scores(unary_weights)
        self._adjacency = graph.adjacency()

    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        """Evidence at observed values; queries at their initial value.

        Queries whose initial value was pruned from the domain start at
        their unary MAP instead.
        """
        state = np.zeros(len(self.graph.variables), dtype=np.int64)
        for var in self.graph.variables:
            if var.is_evidence:
                state[var.vid] = var.observed_index
            elif var.init_index >= 0:
                state[var.vid] = var.init_index
            else:
                state[var.vid] = int(np.argmax(self._unary[var.vid]))
        return state

    def conditional(self, vid: int, state: np.ndarray) -> np.ndarray:
        """Conditional distribution of one variable given the rest."""
        scores = self._unary[vid].copy()
        for fi in self._adjacency.get(vid, ()):  # constraint factors
            scores += self.graph.factors[fi].scores_for(vid, state)
        scores -= scores.max()
        p = np.exp(scores)
        p /= p.sum()
        return p

    def run(self, burn_in: int = 10, sweeps: int = 50) -> GibbsResult:
        """Sample and return marginal estimates for all query variables."""
        query = self.graph.variables.query_ids()
        state = self.initial_state()
        counts = {v: np.zeros(self.graph.variables[v].domain_size)
                  for v in query}
        order = np.asarray(query, dtype=np.int64)
        total = burn_in + sweeps
        moves = samples = 0
        for sweep in range(total):
            with deep_span("infer.gibbs_sweep", sweep=sweep,
                           burn_in=sweep < burn_in) as sp:
                self.rng.shuffle(order)
                sweep_moves = 0
                for vid in order:
                    p = self.conditional(int(vid), state)
                    new = self.rng.choice(len(p), p=p)
                    if new != state[vid]:
                        sweep_moves += 1
                    state[vid] = new
                moves += sweep_moves
                samples += len(order)
                if sp is not None:
                    sp.attributes["moves"] = sweep_moves
            if sweep >= burn_in:
                for vid in query:
                    counts[vid][state[vid]] += 1
        denom = max(sweeps, 1)
        marginals = {v: c / denom for v, c in counts.items()}
        # With zero counting sweeps fall back to the conditional at the
        # final state so callers always receive a distribution.
        if sweeps == 0:
            marginals = {v: self.conditional(v, state) for v in query}
        return GibbsResult(marginals=marginals, sweeps=sweeps,
                           moves=moves, samples=samples)
