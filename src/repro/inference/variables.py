"""Random variables of the grounded model.

Each cell ``t[a]`` becomes one categorical variable ``T_c`` over a pruned
candidate domain (Section 2.2).  Evidence variables (clean cells) are fixed
to their observed value and drive weight learning; query variables (noisy
cells) are inferred.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.dataset import Cell


@dataclass
class VariableInfo:
    """Metadata for one grounded random variable."""

    vid: int
    cell: Cell
    domain: list[str]
    init_index: int       # position of the observed initial value, -1 if absent
    is_evidence: bool

    @property
    def observed_index(self) -> int:
        """Training label for evidence variables (their observed value)."""
        if not self.is_evidence:
            raise ValueError(f"variable {self.vid} is not evidence")
        if self.init_index < 0:
            raise ValueError(
                f"evidence variable {self.vid} lacks its observed value "
                f"in its domain")
        return self.init_index

    @property
    def domain_size(self) -> int:
        return len(self.domain)

    def candidate_index(self, value: str) -> int | None:
        try:
            return self.domain.index(value)
        except ValueError:
            return None


class VariableBlock:
    """An ordered collection of variables with cell-based lookup."""

    def __init__(self):
        self._vars: list[VariableInfo] = []
        self._by_cell: dict[Cell, int] = {}

    def add(self, cell: Cell, domain: list[str], init_index: int,
            is_evidence: bool) -> VariableInfo:
        if cell in self._by_cell:
            raise ValueError(f"duplicate variable for cell {cell}")
        info = VariableInfo(len(self._vars), cell, domain, init_index, is_evidence)
        self._vars.append(info)
        self._by_cell[cell] = info.vid
        return info

    def add_block(self, cells: list[Cell], domains: list[list[str]],
                  init_indices: list[int],
                  is_evidence: bool) -> list[VariableInfo]:
        """Register a whole block of variables; ids are assigned in order.

        Equivalent to repeated :meth:`add` calls (same ids, same
        duplicate check) without the per-cell call overhead — the
        compiler registers each query / evidence block in one shot.
        """
        if not (len(cells) == len(domains) == len(init_indices)):
            raise ValueError("add_block arguments must align")
        base = len(self._vars)
        infos: list[VariableInfo] = []
        for offset, (cell, domain, init_index) in enumerate(
                zip(cells, domains, init_indices)):
            if cell in self._by_cell:
                raise ValueError(f"duplicate variable for cell {cell}")
            info = VariableInfo(base + offset, cell, domain, init_index,
                                is_evidence)
            infos.append(info)
            self._by_cell[cell] = info.vid
        self._vars.extend(infos)
        return infos

    def __len__(self) -> int:
        return len(self._vars)

    def __getitem__(self, vid: int) -> VariableInfo:
        return self._vars[vid]

    def __iter__(self):
        return iter(self._vars)

    def by_cell(self, cell: Cell) -> VariableInfo | None:
        vid = self._by_cell.get(cell)
        return self._vars[vid] if vid is not None else None

    def evidence_ids(self) -> list[int]:
        return [v.vid for v in self._vars if v.is_evidence]

    def query_ids(self) -> list[int]:
        return [v.vid for v in self._vars if not v.is_evidence]
