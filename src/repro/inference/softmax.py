"""Weight learning by empirical risk minimisation (Section 2.2).

HoloClean "uses empirical risk minimization (ERM) over the likelihood
log P(T) to compute the parameters of its probabilistic model.  Variables
that correspond to clean cells in D_c are treated as evidence … efficient
methods such as stochastic gradient descent are used to optimize over that
objective."

With the Section 5.2 relaxation the variables are independent, so the
likelihood factorises into one softmax per variable over its candidate
rows, and the objective is convex (as the paper notes).  The trainer below
performs full-batch Adam over the evidence variables — full-batch gradients
of a convex objective converge faster and deterministically at these model
sizes, while remaining a faithful ERM/SGD-family optimiser.

Marginal inference for independent variables is exact: the per-variable
softmax itself (Gibbs sampling over independent variables converges to the
same distribution; we skip the sampling noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.ops import expand_ranges
from repro.inference.features import FeatureMatrix
from repro.inference.numerics import segment_softmax
from repro.obs.trace import deep_span


@dataclass
class TrainingResult:
    """Learned weights plus the per-epoch training loss trace."""

    weights: np.ndarray
    losses: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.losses)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class SoftmaxTrainer:
    """Full-batch Adam over the evidence-variable log-likelihood.

    Parameters
    ----------
    matrix:
        The grounded unary feature matrix (all variables).
    epochs, learning_rate, l2:
        Optimiser knobs; ``l2`` is the coefficient of the ½‖θ‖² penalty.
    tolerance:
        Stop early once the relative loss improvement drops below this.
    max_training_vars:
        Optional cap on evidence variables (uniform subsample) — the same
        lever the reference implementation uses to bound learning cost on
        multi-million-cell datasets.
    seed:
        Seed for the subsampling RNG.
    fixed_weights:
        Feature index → constant value for pinned weights (the minimality
        prior and other constant-weight rules); these are initialised to
        their pinned value and never updated.
    """

    def __init__(self, matrix: FeatureMatrix, epochs: int = 40,
                 learning_rate: float = 0.1, l2: float = 1e-4,
                 tolerance: float = 1e-6, max_training_vars: int | None = None,
                 seed: int = 0, fixed_weights: dict[int, float] | None = None,
                 lr_decay: float = 0.02, average_tail: float = 0.25):
        self.matrix = matrix
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.tolerance = tolerance
        self.max_training_vars = max_training_vars
        self.seed = seed
        self.fixed_weights = dict(fixed_weights or {})
        #: Per-epoch learning-rate decay: lr_t = lr / (1 + lr_decay · t).
        self.lr_decay = lr_decay
        #: Polyak averaging over the trailing fraction of epochs, damping
        #: Adam's oscillation on flat objectives.
        self.average_tail = average_tail

    # ------------------------------------------------------------------
    def train(self, train_vars: list[int], labels: list[int]) -> TrainingResult:
        """Learn weights from evidence variables.

        Parameters
        ----------
        train_vars:
            Variable ids to train on (evidence variables).
        labels:
            For each training variable, the *local candidate index* of its
            observed value.
        """
        if len(train_vars) != len(labels):
            raise ValueError("train_vars and labels must align")
        m = self.matrix
        weights = np.zeros(m.num_features, dtype=np.float64)
        trainable = np.ones(m.num_features, dtype=np.float64)
        for idx, value in self.fixed_weights.items():
            weights[idx] = value
            trainable[idx] = 0.0
        if not train_vars:
            return TrainingResult(weights=weights)

        train_vars = np.asarray(train_vars, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if (self.max_training_vars is not None
                and len(train_vars) > self.max_training_vars):
            rng = np.random.default_rng(self.seed)
            pick = rng.choice(len(train_vars), size=self.max_training_vars,
                              replace=False)
            train_vars, labels = train_vars[pick], labels[pick]

        # Compacted row layout for the training variables.
        sizes = np.diff(m.var_row_start)[train_vars]
        comp_starts = np.zeros(len(train_vars) + 1, dtype=np.int64)
        np.cumsum(sizes, out=comp_starts[1:])
        train_rows = expand_ranges(m.var_row_start[train_vars], sizes)
        label_positions = comp_starts[:-1] + labels
        if np.any(labels < 0) or np.any(labels >= sizes):
            raise ValueError("a label is outside its variable's domain")

        # Sparse entries restricted to training rows.
        entry_rows = m.entry_row_ids()
        in_train = np.zeros(m.num_rows, dtype=bool)
        in_train[train_rows] = True
        keep = in_train[entry_rows]
        tr_indices = m.indices[keep]
        tr_values = m.values[keep]
        tr_entry_rows = entry_rows[keep]
        # Map global row ids to compacted positions.
        global_to_comp = np.full(m.num_rows, -1, dtype=np.int64)
        global_to_comp[train_rows] = np.arange(len(train_rows))
        tr_entry_comp = global_to_comp[tr_entry_rows]

        n = float(len(train_vars))
        y = np.zeros(len(train_rows), dtype=np.float64)
        y[label_positions] = 1.0

        # Adam state.
        m1 = np.zeros_like(weights)
        m2 = np.zeros_like(weights)
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        losses: list[float] = []
        best_loss = float("inf")
        stall = 0
        tail_start = max(1, int(self.epochs * (1.0 - self.average_tail)))
        tail_sum = np.zeros_like(weights)
        tail_count = 0
        for epoch in range(1, self.epochs + 1):
            with deep_span("learn.epoch", epoch=epoch) as sp:
                comp_scores = np.bincount(
                    tr_entry_comp, weights=weights[tr_indices] * tr_values,
                    minlength=len(train_rows))
                probs = segment_softmax(comp_scores, comp_starts)
                loss = (-np.log(probs[label_positions] + 1e-300).sum() / n
                        + 0.5 * self.l2 * float(weights @ weights))
                losses.append(float(loss))
                if sp is not None:
                    sp.attributes["loss"] = float(loss)

                residual = probs - y
                grad = np.bincount(
                    tr_indices, weights=tr_values * residual[tr_entry_comp],
                    minlength=m.num_features) / n
                grad += self.l2 * weights
                grad *= trainable  # pinned weights stay at their constant

                m1 = beta1 * m1 + (1 - beta1) * grad
                m2 = beta2 * m2 + (1 - beta2) * grad * grad
                m1_hat = m1 / (1 - beta1 ** epoch)
                m2_hat = m2 / (1 - beta2 ** epoch)
                lr = self.learning_rate / (1.0 + self.lr_decay * epoch)
                weights -= lr * m1_hat / (np.sqrt(m2_hat) + eps)

                if epoch >= tail_start:
                    tail_sum += weights
                    tail_count += 1

            # Early stopping with patience: Adam's warmup can raise the
            # loss for a few epochs, so compare against the best seen and
            # stop only after sustained stagnation.
            if best_loss - loss > self.tolerance * max(1.0, abs(best_loss)):
                best_loss = loss
                stall = 0
            else:
                stall += 1
                if stall >= 15 and epoch >= tail_start:
                    break
        if tail_count > 0:
            weights = tail_sum / tail_count
            for idx, value in self.fixed_weights.items():
                weights[idx] = value
        return TrainingResult(weights=weights, losses=losses)

    # ------------------------------------------------------------------
    def marginals(self, weights: np.ndarray,
                  var_ids: list[int]) -> dict[int, np.ndarray]:
        """Exact per-variable softmax marginals for the given variables.

        Only the requested variables' candidate rows are scored — asking
        for a handful of query variables no longer pays for a θ·x pass
        over the whole matrix.
        """
        out: dict[int, np.ndarray] = {}
        if not len(var_ids):
            return out
        m = self.matrix
        starts = m.var_row_start
        var_arr = np.asarray(var_ids, dtype=np.int64)
        sizes = starts[var_arr + 1] - starts[var_arr]
        comp_starts = np.zeros(len(var_arr) + 1, dtype=np.int64)
        np.cumsum(sizes, out=comp_starts[1:])
        rows = expand_ranges(starts[var_arr], sizes)
        scores = m.scores_for_rows(rows, weights)
        # One segmented pass shared with the training loop — the slices
        # below are disjoint views of the normalised score buffer.
        probs = segment_softmax(scores, comp_starts)
        for k, v in enumerate(var_ids):
            out[v] = probs[comp_starts[k]:comp_starts[k + 1]]
        return out
