"""Grounded factor graphs (Equation 1 of the paper).

A factor graph here is the output of grounding: a variable block, the
unary feature matrix (features × tied learnable weights), and a list of
*constraint factors* — the groundings of Algorithm 1's DDlog rules, each
an ``h_φ : candidates → {-1, +1}`` table with the constant weight ``w``
the algorithm takes as input ("Setting w = ∞ converts these factors to
hard constraints; HoloClean allows users to relax hard constraints to soft
constraints by assigning w to a constant value").

Evidence variables inside a grounded constraint are folded into the table
at grounding time, so factors only span query variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inference.features import FeatureMatrix, FeatureSpace
from repro.inference.variables import VariableBlock


@dataclass
class ConstraintFactor:
    """One grounded denial-constraint factor over query variables.

    ``table[i, j, …] = -1`` when the candidate combination violates the
    constraint (given the folded context) and ``+1`` otherwise; the factor
    contributes ``weight · table[assignment]`` to the log-density.
    """

    var_ids: tuple[int, ...]
    table: np.ndarray
    weight: float
    constraint_name: str = ""

    def __post_init__(self) -> None:
        if len(self.var_ids) != self.table.ndim:
            raise ValueError(
                f"factor spans {len(self.var_ids)} variables but its table "
                f"has {self.table.ndim} dimensions")
        if len(set(self.var_ids)) != len(self.var_ids):
            raise ValueError("a factor may reference each variable once")

    @property
    def arity(self) -> int:
        return len(self.var_ids)

    def value(self, assignment: dict[int, int]) -> float:
        """±1 for a full assignment of the factor's variables."""
        idx = tuple(assignment[v] for v in self.var_ids)
        return float(self.table[idx])

    def scores_for(self, var: int, state: np.ndarray) -> np.ndarray:
        """Weighted contribution per candidate of ``var``, others fixed.

        This is the Gibbs-conditional kernel: index the table with the
        current state everywhere except ``var``'s axis.
        """
        selector = tuple(
            slice(None) if u == var else int(state[u]) for u in self.var_ids)
        return self.weight * self.table[selector].astype(np.float64)


@dataclass
class FactorGraph:
    """Variables + unary features + constraint factors + weight space."""

    variables: VariableBlock
    matrix: FeatureMatrix
    space: FeatureSpace
    factors: list[ConstraintFactor] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._adjacency: dict[int, list[int]] | None = None

    def add_factor(self, factor: ConstraintFactor) -> None:
        self.factors.append(factor)
        self._adjacency = None

    def add_factors(self, factors) -> int:
        """Append a batch of factors, preserving grounding order.

        The bulk sink of the vectorized factor-table builder: one call
        per pair chunk instead of one per factor.  Returns the number of
        factors added.
        """
        before = len(self.factors)
        self.factors.extend(factors)
        added = len(self.factors) - before
        if added:
            self._adjacency = None
        return added

    def adjacency(self) -> dict[int, list[int]]:
        """Variable id → indexes of factors touching it (built lazily)."""
        if self._adjacency is None:
            adj: dict[int, list[int]] = {}
            for fi, f in enumerate(self.factors):
                for v in f.var_ids:
                    adj.setdefault(v, []).append(fi)
            self._adjacency = adj
        return self._adjacency

    def unary_scores(self, weights: np.ndarray) -> list[np.ndarray]:
        """Per-variable unary score vectors under the given weights."""
        flat = self.matrix.scores(weights)
        starts = self.matrix.var_row_start
        return [flat[starts[v]:starts[v + 1]] for v in range(len(self.variables))]

    # ------------------------------------------------------------------
    # Grounding-size accounting (used by the scalability experiments)
    # ------------------------------------------------------------------
    def size_report(self) -> dict[str, int]:
        """Counts the paper quotes when discussing grounding blow-up."""
        table_cells = sum(int(np.prod(f.table.shape)) for f in self.factors)
        return {
            "variables": len(self.variables),
            "query_variables": len(self.variables.query_ids()),
            "feature_entries": self.matrix.num_entries,
            "weights": len(self.space),
            "constraint_factors": len(self.factors),
            "factor_table_cells": table_cells,
        }
