"""Vectorized relational primitives over coded columns.

These are the building blocks of the engine's DeepDive-style grounding
queries: composite-key encoding, group-by pair enumeration (the self-join
``Tuple(t1), Tuple(t2)`` restricted to equal join keys), ordered hash
joins for asymmetric keys, and frequency / co-occurrence counting.

All functions operate on integer code arrays where ``-1`` encodes NULL;
rows whose key contains a NULL never join (a missing value cannot witness
a violation).  Pair enumeration reproduces the *exact* pair order of the
naive hash-join in :mod:`repro.detect.violations` so that engine-produced
violation lists are byte-identical to the oracle's.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def segment_positions(counts: np.ndarray) -> np.ndarray:
    """``0 .. counts[k]-1`` within each segment, concatenated.

    The companion of :func:`expand_ranges`: where that flattens *where*
    each segment's elements live, this numbers them *within* their
    segment — the candidate-index axis of a CSR expansion, or the
    position-in-bucket counter of a bounded bucket walk.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """The concatenation of ``[starts[k], starts[k] + counts[k])`` ranges.

    The shared kernel of every variable-width gather in the engine:
    expanding CSR rows, hash-join probe buckets, and sparse-matrix row
    slices all reduce to "for each ``k``, the ``counts[k]`` consecutive
    indices from ``starts[k]``" — :func:`segment_positions` offset by
    each segment's start, with no Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    within = segment_positions(counts)
    if not len(within):
        return _EMPTY
    return np.repeat(starts, counts) + within


def combine_codes(columns: list[np.ndarray]) -> np.ndarray:
    """Collapse several coded columns into one composite key column.

    Rows where any component is NULL (``< 0``) get key ``-1``.  Composite
    keys are dense group ids (via :func:`numpy.unique`), so they are safe
    from overflow regardless of per-column cardinalities.
    """
    if not columns:
        raise ValueError("need at least one column to combine")
    cols = [np.asarray(c, dtype=np.int64) for c in columns]
    valid = cols[0] >= 0
    for col in cols[1:]:
        valid &= col >= 0
    out = np.full(len(cols[0]), -1, dtype=np.int64)
    if len(cols) == 1:
        out[valid] = cols[0][valid]
        return out
    stacked = np.stack([c[valid] for c in cols], axis=1)
    if len(stacked):
        _, inverse = np.unique(stacked, axis=0, return_inverse=True)
        out[valid] = inverse
    return out


def value_counts(codes: np.ndarray, cardinality: int) -> np.ndarray:
    """Occurrences per code (NULLs excluded), as a dense array."""
    valid = codes[codes >= 0]
    return np.bincount(valid, minlength=cardinality)


def pair_code_counts(codes_a: np.ndarray, codes_b: np.ndarray,
                     cardinality_b: int) -> np.ndarray:
    """Co-occurrence counts of two coded columns.

    Returns an ``(k, 3)`` array of ``[code_a, code_b, count]`` rows for
    every pair appearing at least once, sorted by ``(code_a, code_b)``.
    Rows where either side is NULL are ignored.
    """
    valid = (codes_a >= 0) & (codes_b >= 0)
    a = codes_a[valid].astype(np.int64)
    b = codes_b[valid].astype(np.int64)
    if not len(a):
        return np.empty((0, 3), dtype=np.int64)
    # unique-sort, not bincount: memory stays O(rows) even when both
    # attributes are near-unique (cardinality_a x cardinality_b huge).
    joint = a * cardinality_b + b
    present, counts = np.unique(joint, return_counts=True)
    return np.column_stack((present // cardinality_b,
                            present % cardinality_b,
                            counts))


def combine_codes_pairwise(columns1: list[np.ndarray],
                           columns2: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Composite keys for two column lists over one shared dictionary.

    ``combine_codes`` applied to each side separately would assign
    unrelated group ids; here both sides' rows are pooled before the
    :func:`numpy.unique` pass so ``key1[a] == key2[b]`` iff all components
    are pairwise equal.  Each per-position column pair must already share
    a code space (see :meth:`ColumnStore.shared_codes`).
    """
    if len(columns1) != len(columns2):
        raise ValueError("both sides must have the same number of columns")
    if len(columns1) == 1:
        # Single column: the shared codes are already valid keys (NULL is
        # exactly -1, matching the composite-key convention).
        return (np.asarray(columns1[0], dtype=np.int64),
                np.asarray(columns2[0], dtype=np.int64))
    pooled = [np.concatenate((np.asarray(c1, dtype=np.int64),
                              np.asarray(c2, dtype=np.int64)))
              for c1, c2 in zip(columns1, columns2)]
    combined = combine_codes(pooled)
    n = len(columns1[0])
    return combined[:n], combined[n:]


# ---------------------------------------------------------------------------
# Pair enumeration
# ---------------------------------------------------------------------------
def _expand_contiguous_pairs(values: np.ndarray, starts: np.ndarray,
                             sizes: np.ndarray,
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nested-loop ``(i, j)`` pairs within each contiguous run of ``values``.

    The shared kernel of the symmetric joins: for every run
    ``values[starts[g]:starts[g] + sizes[g]]``, emits all ``i < j``
    position pairs in nested-loop order.  Returns ``(left, right,
    source)`` where ``source`` is the position each ``left`` came from
    (free — it is an intermediate of the expansion), letting callers
    attach further per-position labels to pairs.
    """
    n = len(values)
    boundary = np.zeros(n, dtype=bool)
    boundary[starts] = True
    group_index = np.cumsum(boundary) - 1           # group id per position
    ends = (starts + sizes)[group_index]            # exclusive end per position
    partners = ends - np.arange(n) - 1              # pairs each position opens
    if not partners.sum():
        return _EMPTY, _EMPTY, _EMPTY
    source = np.repeat(np.arange(n), partners)
    positions = expand_ranges(np.arange(1, n + 1), partners)
    return np.repeat(values, partners), values[positions], source


def intra_group_pairs(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All unordered row pairs sharing a non-NULL key, ``left < right``.

    Emitted in the naive hash-join's bucket order: groups ordered by their
    first (smallest) member row, pairs within a group in nested-loop
    ``(i, j)`` order — i.e. lexicographic ``(left, right)``.
    """
    keys = np.asarray(keys)
    rows = np.nonzero(keys >= 0)[0]
    if not len(rows):
        return _EMPTY, _EMPTY
    order = rows[np.argsort(keys[rows], kind="stable")]
    starts, sizes = bucket_extents(keys[order])
    left, right, source = _expand_contiguous_pairs(order, starts, sizes)
    if not len(left):
        return _EMPTY, _EMPTY
    # Naive bucket order: buckets appear in first-member (= min row) order.
    row_group_min = np.repeat(order[starts], sizes)  # min row per position
    reorder = np.lexsort((right, left, row_group_min[source]))
    return (left[reorder].astype(np.int64, copy=False),
            right[reorder].astype(np.int64, copy=False))


def matching_pairs(key1: np.ndarray,
                   key2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Ordered pairs ``(a, b)`` with ``key1[a] == key2[b]`` and ``a != b``.

    Both keys must be coded over the same dictionary; NULL (``-1``) never
    matches.  This is the probe side of an asymmetric hash join — the
    caller applies :func:`dedup_ordered_pairs` to reproduce the naive
    detector's unordered-pair semantics.  Pairs come out sorted by
    ``(a, b)``, the naive probe order.
    """
    key1 = np.asarray(key1, dtype=np.int64)
    key2 = np.asarray(key2, dtype=np.int64)
    build_rows = np.nonzero(key2 >= 0)[0]
    probe_rows = np.nonzero(key1 >= 0)[0]
    if not len(build_rows) or not len(probe_rows):
        return _EMPTY, _EMPTY
    build_order = build_rows[np.argsort(key2[build_rows], kind="stable")]
    build_keys = key2[build_order]
    lo = np.searchsorted(build_keys, key1[probe_rows], side="left")
    hi = np.searchsorted(build_keys, key1[probe_rows], side="right")
    counts = hi - lo
    if not counts.sum():
        return _EMPTY, _EMPTY
    left = np.repeat(probe_rows, counts)
    right = build_order[expand_ranges(lo, counts)]
    keep = left != right
    left, right = left[keep], right[keep]
    # Probe rows ascend already; within one probe row the build bucket is
    # sorted by row (stable sort over equal keys preserves row order), so
    # the stream is lexicographic (a, b) — same as the naive loop.
    return left, right


# ---------------------------------------------------------------------------
# Candidate-domain bucket joins (DC-factor grounding)
# ---------------------------------------------------------------------------
def bucket_memberships(codes: np.ndarray,
                       tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Normalise a candidate-membership scan into dense bucket ids.

    ``codes``/``tids`` are parallel arrays listing, in scan order, which
    candidate value (code) each tuple may take — the relation the naive
    :class:`~repro.core.partition.PairEnumerator` builds its value→tuples
    buckets from.  Returns one row per distinct ``(value, tid)`` pair as
    ``(bucket_ids, member_tids)``, sorted by ``(bucket, tid)``, where
    buckets are numbered by the first appearance of their value in the
    scan — exactly the insertion order of the naive enumerator's bucket
    dict.
    """
    codes = np.asarray(codes, dtype=np.int64)
    tids = np.asarray(tids, dtype=np.int64)
    if not len(codes):
        return _EMPTY, _EMPTY
    _, first_idx, inverse = np.unique(codes, return_index=True,
                                      return_inverse=True)
    rank_of = np.empty(len(first_idx), dtype=np.int64)
    rank_of[np.argsort(first_idx, kind="stable")] = np.arange(len(first_idx))
    ranks = rank_of[inverse]
    # One composite sort both dedups (value, tid) rows and orders them by
    # (bucket rank, tid) — the order bucket-by-bucket enumeration needs.
    stride = int(tids.max()) + 1
    combined = np.unique(ranks * stride + tids)
    return combined // stride, combined % stride


def gather_csr_rows(indptr: np.ndarray, codes: np.ndarray, rows: np.ndarray,
                    width: int) -> np.ndarray:
    """Equal-width CSR rows gathered into a dense ``(len(rows), width)`` grid.

    Every selected row must hold exactly ``width`` codes (the caller
    groups rows by width first); the grid preserves each row's code
    order.  This is the candidate-axis materialisation of the vectorized
    factor-table builder: one gather replaces ``len(rows)`` Python-level
    domain walks.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = np.asarray(indptr, dtype=np.int64)[rows]
    return np.asarray(codes)[starts[:, None] + np.arange(width, dtype=np.int64)]


def bucket_extents(bucket_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start offset and size of each bucket in a sorted membership.

    ``bucket_ids`` must be sorted (as produced by
    :func:`bucket_memberships`); buckets come back in ascending id order,
    i.e. the naive enumerator's first-seen bucket order.
    """
    bucket_ids = np.asarray(bucket_ids)
    if not len(bucket_ids):
        return _EMPTY, _EMPTY
    boundary = np.empty(len(bucket_ids), dtype=bool)
    boundary[0] = True
    boundary[1:] = bucket_ids[1:] != bucket_ids[:-1]
    starts = np.nonzero(boundary)[0]
    sizes = np.diff(np.append(starts, len(bucket_ids)))
    return starts, sizes


def bucket_join_pairs(bucket_ids: np.ndarray,
                      member_tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deduped unordered pairs of tuples sharing a candidate bucket.

    Input rows must be sorted by ``(bucket, tid)`` (see
    :func:`bucket_memberships`).  Pairs are emitted bucket by bucket, in
    nested-loop ``(left, right)`` order within each bucket, with a pair
    kept only in the *first* bucket containing both tuples — the exact
    stream (set and order) of the naive enumerator's bucket walk.
    """
    bucket_ids = np.asarray(bucket_ids, dtype=np.int64)
    member_tids = np.asarray(member_tids, dtype=np.int64)
    if not len(bucket_ids):
        return _EMPTY, _EMPTY
    starts, sizes = bucket_extents(bucket_ids)
    left, right, _ = _expand_contiguous_pairs(member_tids, starts, sizes)
    if not len(left):
        return _EMPTY, _EMPTY
    # Cross-bucket dedup keeping the first occurrence: the stream is
    # already in emission order, so `np.unique(..., return_index=True)`
    # marks each pair's earliest position and sorting those positions
    # restores the order.
    stride = int(member_tids.max()) + 1
    _, first = np.unique(left * stride + right, return_index=True)
    keep = np.sort(first)
    return left[keep], right[keep]


def bucket_block_end(size: int, start: int, budget: int) -> int:
    """The ``end`` :func:`bucket_pair_block` picks for a bucket of ``size``.

    Exposed separately so a scheduler can pre-compute block boundaries
    (and fan the blocks out to workers) while remaining byte-identical to
    the sequential walk.
    """
    opened = size - 1 - np.arange(start, size - 1)
    cumulative = np.cumsum(opened)
    end = start + int(np.searchsorted(cumulative, budget, side="left")) + 1
    return min(end, size - 1)


def bucket_pair_block(members: np.ndarray, start: int,
                      budget: int) -> tuple[np.ndarray, np.ndarray, int]:
    """A bounded block of one bucket's nested-loop pairs.

    For a single (sorted) bucket too large to materialise at once, emits
    the pairs opened by leading members ``members[start:end)`` — in the
    exact nested ``(i, j)`` order — choosing ``end`` so the block holds
    roughly ``budget`` pairs (always at least one leading member).
    Returns ``(left, right, end)``; the bucket is exhausted when ``end``
    reaches ``len(members) - 1``.
    """
    members = np.asarray(members, dtype=np.int64)
    size = len(members)
    if start >= size - 1:
        return _EMPTY, _EMPTY, max(start, size - 1)
    end = bucket_block_end(size, start, budget)
    counts = size - 1 - np.arange(start, end)
    left = np.repeat(members[start:end], counts)
    positions = expand_ranges(np.arange(start + 1, end + 1), counts)
    return left, members[positions], end


def estimate_symmetric_pairs(keys: np.ndarray) -> int:
    """Number of pairs :func:`intra_group_pairs` would materialise."""
    valid = keys[keys >= 0]
    if not len(valid):
        return 0
    _, sizes = np.unique(valid, return_counts=True)
    return int((sizes * (sizes - 1) // 2).sum())


def estimate_matching_pairs(key1: np.ndarray, key2: np.ndarray) -> int:
    """Upper bound on pairs :func:`matching_pairs` would materialise."""
    k1 = key1[key1 >= 0]
    k2 = key2[key2 >= 0]
    if not len(k1) or not len(k2):
        return 0
    values1, counts1 = np.unique(k1, return_counts=True)
    values2, counts2 = np.unique(k2, return_counts=True)
    shared1 = np.isin(values1, values2)
    positions = np.searchsorted(values2, values1[shared1])
    return int((counts1[shared1] * counts2[positions]).sum())


def dedup_ordered_pairs(left: np.ndarray, right: np.ndarray,
                        probe_key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop back-edges already covered by the naive join's forward pass.

    The naive asymmetric join yields ``(a, b)`` with ``b < a`` only when
    ``key1[b] != key1[a]`` (otherwise the unordered pair was produced when
    ``b`` played the probe side).  Mirror that rule exactly.
    """
    if not len(left):
        return left, right
    keep = (right > left) | (probe_key[right] != probe_key[left])
    return left[keep], right[keep]
