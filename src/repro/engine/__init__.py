"""Vectorized relational engine for grounding (the paper's DBMS layer).

HoloClean grounds its probabilistic model with relational queries inside
a DBMS (Postgres + DeepDive, §4–5 of the paper); this package is the
reproduction's equivalent subsystem:

* :mod:`~repro.engine.store` — :class:`ColumnStore`, a dictionary-encoded
  columnar snapshot of a dataset;
* :mod:`~repro.engine.ops` — vectorized join / group-by / counting
  primitives over coded columns;
* :mod:`~repro.engine.stats` — :class:`EngineStatistics`, engine-computed
  frequencies and co-occurrences behind the standard ``Statistics`` API;
* :mod:`~repro.engine.backend` — the pluggable :class:`Backend` protocol
  with NumPy (default) and sqlite3 implementations.

The :class:`Engine` facade bundles one store with one backend and is what
the pipeline passes to the violation detector, domain pruner, and
compiler when ``HoloCleanConfig.use_engine`` is on (the default).  Every
engine-backed path returns byte-identical results to the naive Python
path, which is kept as a correctness oracle.
"""

from __future__ import annotations

from repro.dataset.dataset import Dataset
from repro.engine.backend import (
    BACKEND_NAMES,
    Backend,
    NumpyBackend,
    SQLiteBackend,
    make_backend,
)
from repro.engine.store import NULL_CODE, ColumnStore


class Engine:
    """One dataset's column store plus a relational execution backend.

    Construction is cheap; the store and backend are built lazily on
    first use and cached.  ``refresh()`` drops them so the next access
    re-encodes the (mutated) dataset.
    """

    def __init__(self, dataset: Dataset, backend: str = "numpy"):
        self.dataset = dataset
        self.backend_name = backend
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown engine backend {backend!r}; pick one of {BACKEND_NAMES}")
        self._store: ColumnStore | None = None
        self._backend: Backend | None = None
        self._statistics = None

    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        if self._store is None:
            self._store = ColumnStore(self.dataset)
        return self._store

    @property
    def backend(self) -> Backend:
        if self._backend is None:
            self._backend = make_backend(self.store, self.backend_name)
        return self._backend

    def statistics(self):
        """An :class:`~repro.engine.stats.EngineStatistics` over this engine
        (one shared instance, so counts feed the domain pruner and the
        co-occurrence featurizers without recomputation)."""
        if self._statistics is None:
            from repro.engine.stats import EngineStatistics

            self._statistics = EngineStatistics(self)
        return self._statistics

    def refresh(self) -> None:
        """Invalidate the encoded snapshot after the dataset was mutated."""
        self._store = None
        self._backend = None
        if self._statistics is not None:
            # Cached counts were computed from the stale encoding; drop
            # them so any caller still holding the instance stays honest.
            stats = self._statistics
            self._statistics = None
            stats.drop_caches()

    def __repr__(self) -> str:
        return f"Engine(backend={self.backend_name!r}, dataset={self.dataset.name!r})"


__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ColumnStore",
    "Engine",
    "NULL_CODE",
    "NumpyBackend",
    "SQLiteBackend",
    "make_backend",
]
