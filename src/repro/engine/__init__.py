"""Vectorized relational engine for grounding (the paper's DBMS layer).

HoloClean grounds its probabilistic model with relational queries inside
a DBMS (Postgres + DeepDive, §4–5 of the paper); this package is the
reproduction's equivalent subsystem:

* :mod:`~repro.engine.store` — :class:`ColumnStore`, a dictionary-encoded
  columnar snapshot of a dataset;
* :mod:`~repro.engine.ops` — vectorized join / group-by / counting
  primitives over coded columns;
* :mod:`~repro.engine.stats` — :class:`EngineStatistics`, engine-computed
  frequencies and co-occurrences behind the standard ``Statistics`` API;
* :mod:`~repro.engine.backend` — the pluggable :class:`Backend` protocol
  with a ``register_backend`` registry (NumPy and sqlite3 built in);
* :mod:`~repro.engine.parallel` — :class:`ParallelBackend`, multi-core
  sharded grounding over ``multiprocessing`` + shared memory.

The :class:`Engine` facade bundles one store with one backend and is what
the pipeline passes to the violation detector, domain pruner, and
compiler when ``HoloCleanConfig.use_engine`` is on (the default).  Every
engine-backed path returns byte-identical results to the naive Python
path, which is kept as a correctness oracle.
"""

from __future__ import annotations

from repro.dataset.dataset import Dataset
from repro.engine.backend import (
    Backend,
    NumpyBackend,
    SQLiteBackend,
    backend_names,
    make_backend,
    register_backend,
)
from repro.engine.parallel import ParallelBackend
from repro.engine.store import NULL_CODE, ColumnStore


class Engine:
    """One dataset's column store plus a relational execution backend.

    Construction is cheap; the store and backend are built lazily on
    first use and cached.  ``refresh()`` drops them so the next access
    re-encodes the (mutated) dataset.  ``parallel_workers > 0`` wraps the
    named backend in a :class:`ParallelBackend` that shards grounding
    work across that many worker processes (byte-identical results).
    """

    def __init__(self, dataset: Dataset, backend: str = "numpy",
                 parallel_workers: int = 0):
        self.dataset = dataset
        self.backend_name = backend
        if backend not in backend_names():
            raise ValueError(
                f"unknown engine backend {backend!r}; "
                f"pick one of {backend_names()}")
        self.parallel_workers = int(parallel_workers)
        self._store: ColumnStore | None = None
        self._backend: Backend | None = None
        self._statistics = None

    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        if self._store is None:
            self._store = ColumnStore(self.dataset)
        return self._store

    @property
    def backend(self) -> Backend:
        if self._backend is None:
            if self.backend_name == "parallel":
                self._backend = make_backend(
                    self.store, "parallel",
                    workers=self.parallel_workers or None)
            elif self.parallel_workers > 0:
                self._backend = make_backend(
                    self.store, "parallel", workers=self.parallel_workers,
                    inner=self.backend_name)
            else:
                self._backend = make_backend(self.store, self.backend_name)
        return self._backend

    def statistics(self):
        """An :class:`~repro.engine.stats.EngineStatistics` over this engine
        (one shared instance, so counts feed the domain pruner and the
        co-occurrence featurizers without recomputation)."""
        if self._statistics is None:
            from repro.engine.stats import EngineStatistics

            self._statistics = EngineStatistics(self)
        return self._statistics

    def close(self) -> None:
        """Release backend resources (worker pools, shared memory, DBs)."""
        backend = self._backend
        if backend is not None:
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    def refresh(self) -> None:
        """Invalidate the encoded snapshot after the dataset was mutated."""
        self.close()
        self._store = None
        self._backend = None
        if self._statistics is not None:
            # Cached counts were computed from the stale encoding; drop
            # them so any caller still holding the instance stays honest.
            stats = self._statistics
            self._statistics = None
            stats.drop_caches()

    def __repr__(self) -> str:
        return f"Engine(backend={self.backend_name!r}, dataset={self.dataset.name!r})"


def __getattr__(name: str):
    # Live view: resolved on access so it includes every backend
    # registered by the time the caller asks (including "parallel",
    # which registers after repro.engine.backend is imported).
    if name == "BACKEND_NAMES":
        return backend_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ColumnStore",
    "Engine",
    "NULL_CODE",
    "NumpyBackend",
    "ParallelBackend",
    "SQLiteBackend",
    "backend_names",
    "make_backend",
    "register_backend",
]
