"""Columnar relation store: integer-coded NumPy columns with value dictionaries.

HoloClean's original system grounds its model inside a DBMS, where every
relational operator works over columns, not Python objects.  The
:class:`ColumnStore` is the equivalent substrate here: each attribute of a
:class:`~repro.dataset.dataset.Dataset` is dictionary-encoded once into an
``int32`` NumPy column (``-1`` encodes NULL) so that joins, group-bys and
frequency counts become array operations on small integers.

Codes are assigned in first-seen row order, matching the order in which
the naive code paths (``Dataset.active_domain``, ``Statistics.counts``)
encounter values — this keeps engine-produced artifacts byte-compatible
with the naive oracle.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.dataset import Dataset

#: Code reserved for NULL in every encoded column.
NULL_CODE: int = -1


class ColumnStore:
    """Dictionary-encoded columnar view of one :class:`Dataset`.

    The store is a snapshot: it is built once from the dataset's current
    values and does not observe later mutations.  Callers that mutate the
    dataset must build a fresh store (see :meth:`Engine.refresh
    <repro.engine.Engine.refresh>`).
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self.attributes: list[str] = list(dataset.schema.names)
        self._codes: dict[str, np.ndarray] = {}
        self._values: dict[str, list[str]] = {}
        self._code_of: dict[str, dict[str, int]] = {}
        self._shared: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        self._encode(dataset)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _encode(self, dataset: Dataset) -> None:
        n = dataset.num_tuples
        columns = {a: np.full(n, NULL_CODE, dtype=np.int32)
                   for a in self.attributes}
        dictionaries: dict[str, dict[str, int]] = {a: {} for a in self.attributes}
        names = self.attributes
        for tid in range(n):
            row = dataset.row_ref(tid)
            for i, attr in enumerate(names):
                value = row[i]
                if value is None:
                    continue
                mapping = dictionaries[attr]
                code = mapping.get(value)
                if code is None:
                    code = len(mapping)
                    mapping[value] = code
                columns[attr][tid] = code
        self._codes = columns
        self._code_of = dictionaries
        self._values = {a: list(d) for a, d in dictionaries.items()}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.dataset.num_tuples

    def codes(self, attribute: str) -> np.ndarray:
        """The encoded column of ``attribute`` (``-1`` = NULL)."""
        return self._codes[attribute]

    def values(self, attribute: str) -> list[str]:
        """The value dictionary: ``values[code]`` is the decoded string."""
        return self._values[attribute]

    def cardinality(self, attribute: str) -> int:
        """Number of distinct non-NULL values of ``attribute``."""
        return len(self._values[attribute])

    def code_of(self, attribute: str, value: str) -> int:
        """The code of ``value`` in ``attribute`` (``-1`` if absent)."""
        return self._code_of[attribute].get(value, NULL_CODE)

    def decode(self, attribute: str, code: int) -> str | None:
        return None if code < 0 else self._values[attribute][code]

    def decoded_column(self, attribute: str) -> list[str | None]:
        """The whole column decoded back to Python values."""
        values = self._values[attribute]
        return [None if c < 0 else values[c]
                for c in self._codes[attribute].tolist()]

    # ------------------------------------------------------------------
    # Cross-attribute comparison
    # ------------------------------------------------------------------
    def shared_codes(self, attr_a: str, attr_b: str) -> tuple[np.ndarray, np.ndarray]:
        """Both columns re-coded over one shared dictionary.

        Per-attribute codes are only comparable within their own column;
        predicates like ``t1.A = t2.B`` need codes drawn from a dictionary
        covering ``values(A) ∪ values(B)``.  Equal strings map to equal
        shared codes; NULL stays ``-1``.  Results are cached per pair.
        """
        if attr_a == attr_b:
            col = self._codes[attr_a]
            return col, col
        key = (attr_a, attr_b) if attr_a <= attr_b else (attr_b, attr_a)
        cached = self._shared.get(key)
        if cached is None:
            union: dict[str, int] = {}
            luts = []
            for attr in key:
                lut = np.empty(len(self._values[attr]), dtype=np.int64)
                for code, value in enumerate(self._values[attr]):
                    shared = union.setdefault(value, len(union))
                    lut[code] = shared
                luts.append(lut)
            cols = []
            for attr, lut in zip(key, luts):
                codes = self._codes[attr]
                out = np.full(len(codes), NULL_CODE, dtype=np.int64)
                valid = codes >= 0
                out[valid] = lut[codes[valid]]
                cols.append(out)
            cached = (cols[0], cols[1])
            self._shared[key] = cached
        if (attr_a, attr_b) == key:
            return cached
        return cached[1], cached[0]

    def __repr__(self) -> str:
        return (f"ColumnStore(rows={self.num_rows}, "
                f"attributes={len(self.attributes)})")
