"""Columnar relation store: integer-coded NumPy columns with value dictionaries.

HoloClean's original system grounds its model inside a DBMS, where every
relational operator works over columns, not Python objects.  The
:class:`ColumnStore` is the equivalent substrate here: each attribute of a
:class:`~repro.dataset.dataset.Dataset` is dictionary-encoded once into an
``int32`` NumPy column (``-1`` encodes NULL) so that joins, group-bys and
frequency counts become array operations on small integers.

Codes are assigned in first-seen row order, matching the order in which
the naive code paths (``Dataset.active_domain``, ``Statistics.counts``)
encounter values — this keeps engine-produced artifacts byte-compatible
with the naive oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.dataset import Cell, Dataset

#: Code reserved for NULL in every encoded column.
NULL_CODE: int = -1


@dataclass(frozen=True)
class DomainCodeIndex:
    """CSR candidate-code lists per tuple for one attribute.

    ``codes[indptr[t]:indptr[t + 1]]`` are the codes of the values cell
    ``(t, attribute)`` may take under a set of pruned candidate domains —
    the join-feasibility side of Algorithm 1's grounding query.  Built by
    :meth:`ColumnStore.domain_code_index`.
    """

    indptr: np.ndarray
    codes: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    def row(self, tid: int) -> np.ndarray:
        return self.codes[self.indptr[tid]:self.indptr[tid + 1]]


class ColumnStore:
    """Dictionary-encoded columnar view of one :class:`Dataset`.

    The store is a snapshot: it is built once from the dataset's current
    values and does not observe later mutations.  Callers that mutate the
    dataset must build a fresh store (see :meth:`Engine.refresh
    <repro.engine.Engine.refresh>`).
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self.attributes: list[str] = list(dataset.schema.names)
        self._codes: dict[str, np.ndarray] = {}
        self._values: dict[str, list[str]] = {}
        self._code_of: dict[str, dict[str, int]] = {}
        self._shared: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        self._encode(dataset)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, dataset: Dataset,
                    codes: dict[str, np.ndarray],
                    values: dict[str, list[str]]) -> ColumnStore:
        """Adopt already-encoded columns instead of re-encoding the dataset.

        ``codes``/``values`` must be a faithful dictionary encoding of
        ``dataset`` in first-seen order (e.g. another store's arrays
        shipped through shared memory); no copy of the code arrays is
        made, so workers can view them zero-copy from a shared block.
        """
        store = cls.__new__(cls)
        store.dataset = dataset
        store.attributes = list(dataset.schema.names)
        store._codes = {a: np.asarray(codes[a], dtype=np.int32)
                        for a in store.attributes}
        store._values = {a: list(values[a]) for a in store.attributes}
        store._code_of = {a: {v: i for i, v in enumerate(store._values[a])}
                          for a in store.attributes}
        store._shared = {}
        return store

    def _encode(self, dataset: Dataset) -> None:
        n = dataset.num_tuples
        columns = {a: np.full(n, NULL_CODE, dtype=np.int32)
                   for a in self.attributes}
        dictionaries: dict[str, dict[str, int]] = {a: {} for a in self.attributes}
        names = self.attributes
        for tid in range(n):
            row = dataset.row_ref(tid)
            for i, attr in enumerate(names):
                value = row[i]
                if value is None:
                    continue
                mapping = dictionaries[attr]
                code = mapping.get(value)
                if code is None:
                    code = len(mapping)
                    mapping[value] = code
                columns[attr][tid] = code
        self._codes = columns
        self._code_of = dictionaries
        self._values = {a: list(d) for a, d in dictionaries.items()}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.dataset.num_tuples

    def codes(self, attribute: str) -> np.ndarray:
        """The encoded column of ``attribute`` (``-1`` = NULL)."""
        return self._codes[attribute]

    def values(self, attribute: str) -> list[str]:
        """The value dictionary: ``values[code]`` is the decoded string."""
        return self._values[attribute]

    def cardinality(self, attribute: str) -> int:
        """Number of distinct non-NULL values of ``attribute``."""
        return len(self._values[attribute])

    def code_of(self, attribute: str, value: str) -> int:
        """The code of ``value`` in ``attribute`` (``-1`` if absent)."""
        return self._code_of[attribute].get(value, NULL_CODE)

    def decode(self, attribute: str, code: int) -> str | None:
        return None if code < 0 else self._values[attribute][code]

    def decoded_column(self, attribute: str) -> list[str | None]:
        """The whole column decoded back to Python values."""
        values = self._values[attribute]
        return [None if c < 0 else values[c]
                for c in self._codes[attribute].tolist()]

    # ------------------------------------------------------------------
    # Cross-attribute comparison
    # ------------------------------------------------------------------
    def shared_codes(self, attr_a: str, attr_b: str) -> tuple[np.ndarray, np.ndarray]:
        """Both columns re-coded over one shared dictionary.

        Per-attribute codes are only comparable within their own column;
        predicates like ``t1.A = t2.B`` need codes drawn from a dictionary
        covering ``values(A) ∪ values(B)``.  Equal strings map to equal
        shared codes; NULL stays ``-1``.  Results are cached per pair.
        """
        if attr_a == attr_b:
            col = self._codes[attr_a]
            return col, col
        key = (attr_a, attr_b) if attr_a <= attr_b else (attr_b, attr_a)
        cached = self._shared.get(key)
        if cached is None:
            union: dict[str, int] = {}
            luts = []
            for attr in key:
                lut = np.empty(len(self._values[attr]), dtype=np.int64)
                for code, value in enumerate(self._values[attr]):
                    shared = union.setdefault(value, len(union))
                    lut[code] = shared
                luts.append(lut)
            cols = []
            for attr, lut in zip(key, luts):
                codes = self._codes[attr]
                out = np.full(len(codes), NULL_CODE, dtype=np.int64)
                valid = codes >= 0
                out[valid] = lut[codes[valid]]
                cols.append(out)
            cached = (cols[0], cols[1])
            self._shared[key] = cached
        if (attr_a, attr_b) == key:
            return cached
        return cached[1], cached[0]

    # ------------------------------------------------------------------
    # Candidate-domain indexing (DC-factor grounding)
    # ------------------------------------------------------------------
    def union_codebook(self, *attributes: str) -> dict[str, int]:
        """A value→code dictionary covering several attributes' values.

        Codes follow the first attribute's dictionary order, then each
        later attribute's yet-unseen values; equal strings always map to
        equal codes, which is what cross-attribute join predicates
        (``t1.A = t2.B``) need.
        """
        book: dict[str, int] = {}
        for attr in attributes:
            for value in self._values[attr]:
                book.setdefault(value, len(book))
        return book

    def recoded_column(self, attribute: str,
                       codebook: dict[str, int]) -> np.ndarray:
        """The whole column re-coded into ``codebook`` (NULL stays ``-1``).

        Values absent from ``codebook`` extend it in place, the same
        convention as :meth:`domain_code_index` — so fixed-context codes
        and candidate-domain codes drawn from one codebook stay
        comparable.  Used by the vectorized factor-table builder for the
        cells a denial constraint reads at their observed values.
        """
        lut = np.empty(max(len(self._values[attribute]), 1), dtype=np.int64)
        for code, value in enumerate(self._values[attribute]):
            lut[code] = codebook.setdefault(value, len(codebook))
        column = self._codes[attribute]
        out = np.full(len(column), NULL_CODE, dtype=np.int64)
        valid = column >= 0
        out[valid] = lut[column[valid]]
        return out

    def domain_code_index(self, attribute: str,
                          domains: dict[Cell, list[str]],
                          codebook: dict[str, int] | None = None) -> DomainCodeIndex:
        """The cell→domain-codes index for one attribute.

        Row ``t`` lists the codes of the candidate values of cell
        ``(t, attribute)``: the pruned candidate domain for query cells in
        ``domains`` (in domain order), the initial value for evidence
        cells, and nothing for NULL evidence cells — mirroring the naive
        enumerator's per-cell candidate scan exactly.

        Codes are drawn from ``codebook`` (default: this attribute's own
        dictionary); candidate values absent from it extend it *in place*,
        so two indexes built over one shared codebook — e.g. via
        :meth:`union_codebook` for a cross-attribute join — stay in one
        code space.
        """
        if codebook is None:
            codebook = dict(self._code_of[attribute])
        lut = np.empty(max(len(self._values[attribute]), 1), dtype=np.int64)
        for code, value in enumerate(self._values[attribute]):
            lut[code] = codebook.setdefault(value, len(codebook))

        overrides: dict[int, list[int]] = {}
        for cell, domain in domains.items():
            if cell.attribute == attribute:
                overrides[cell.tid] = [codebook.setdefault(v, len(codebook))
                                       for v in domain]

        column = self._codes[attribute]
        counts = (column >= 0).astype(np.int64)
        for tid, domain_codes in overrides.items():
            counts[tid] = len(domain_codes)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        codes = np.empty(int(indptr[-1]), dtype=np.int64)

        evidence = column >= 0
        if overrides:
            evidence[np.fromiter(overrides, dtype=np.int64,
                                 count=len(overrides))] = False
        codes[indptr[:-1][evidence]] = lut[column[evidence]]
        for tid, domain_codes in overrides.items():
            codes[indptr[tid]:indptr[tid + 1]] = domain_codes
        return DomainCodeIndex(indptr=indptr, codes=codes)

    def __repr__(self) -> str:
        return (f"ColumnStore(rows={self.num_rows}, "
                f"attributes={len(self.attributes)})")
