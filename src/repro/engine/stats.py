"""Engine-backed dataset statistics.

Drop-in replacement for :class:`repro.dataset.stats.Statistics`: the same
interface and byte-identical results, but single-column frequencies and
pairwise co-occurrence counts come from the backend's vectorized
group-bys instead of Python row scans, and the Algorithm 2 /
co-occurrence-featurizer hot query :meth:`cooccurring_values` is served
from a prebuilt index (one dict lookup per call) instead of a full scan
of the pair counter per cell.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.dataset.stats import Statistics


class EngineStatistics(Statistics):
    """Statistics computed by a grounding :class:`~repro.engine.Engine`."""

    def __init__(self, engine):
        super().__init__(engine.dataset)
        self._engine = engine
        #: (attr, given_attr) → {given_value: {value: joint count}}
        self._cooc_index: dict[tuple[str, str], dict[str, dict[str, int]]] = {}
        #: attr → dense per-code counts (the backend group-by, cached).
        self._code_counts: dict[str, np.ndarray] = {}
        #: (attr_a, attr_b) → (k, 3) [code_a, code_b, count] rows.
        self._joint_codes: dict[tuple[str, str], np.ndarray] = {}
        #: (attr, given_attr) → CSR conditional lookup (see below).
        self._conditional: dict[tuple[str, str],
                                tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Code-space counts (shared by the Counter builders below and the
    # vectorized featurizer, which consumes codes directly)
    # ------------------------------------------------------------------
    def code_counts(self, attribute: str) -> np.ndarray:
        """Occurrences per dictionary code of one attribute (cached)."""
        cached = self._code_counts.get(attribute)
        if cached is None:
            cached = self._engine.backend.value_counts(attribute)
            self._code_counts[attribute] = cached
        return cached

    def joint_code_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        """``(k, 3)`` co-occurrence rows sorted by ``(code_a, code_b)``.

        Cached per *ordered* pair: both orientations are one backend
        group-by and the featurizer's joint lookups binary-search the
        rows, so each orientation needs its own sort order.
        """
        key = (attr_a, attr_b)
        cached = self._joint_codes.get(key)
        if cached is None:
            cached = self._engine.backend.pair_value_counts(attr_a, attr_b)
            self._joint_codes[key] = cached
        return cached

    def conditional_table(self, attr: str, given_attr: str,
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR view of ``joint_code_counts`` keyed by the *given* code.

        Returns ``(indptr, codes, counts)``: for a context code ``g`` of
        ``given_attr``, the candidate codes of ``attr`` co-occurring with
        it are ``codes[indptr[g]:indptr[g + 1]]`` with joint frequencies
        in the matching ``counts`` slice — the code-space form of the
        ``cooccurring_values`` dict that Algorithm 2's vectorized pruner
        expands without any per-cell dict materialisation.
        """
        key = (attr, given_attr)
        cached = self._conditional.get(key)
        if cached is None:
            rows = self.joint_code_counts(given_attr, attr)
            cardinality = self._engine.store.cardinality(given_attr)
            per_given = np.bincount(rows[:, 0], minlength=cardinality)
            indptr = np.zeros(cardinality + 1, dtype=np.int64)
            np.cumsum(per_given, out=indptr[1:])
            cached = (indptr, rows[:, 1], rows[:, 2])
            self._conditional[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Vectorized count builders
    # ------------------------------------------------------------------
    def _build_counts(self, attribute: str) -> Counter:
        store = self._engine.store
        counts = self.code_counts(attribute)
        values = store.values(attribute)
        return Counter({values[code]: int(n)
                        for code, n in enumerate(counts) if n})

    def _build_pair_counts(self, key: tuple[str, str]) -> Counter:
        store = self._engine.store
        rows = self.joint_code_counts(key[0], key[1])
        values_a = store.values(key[0])
        values_b = store.values(key[1])
        return Counter({(values_a[a], values_b[b]): int(n)
                        for a, b, n in rows.tolist()})

    # ------------------------------------------------------------------
    # Indexed conditional lookups
    # ------------------------------------------------------------------
    def cooccurring_values(self, attr: str, given_attr: str,
                           given_value: str) -> dict[str, int]:
        index_key = (attr, given_attr)
        index = self._cooc_index.get(index_key)
        if index is None:
            index = {}
            # Built from the same counters the naive path scans, so the
            # per-given-value dicts match it entry for entry.
            if attr <= given_attr:
                for (va, vb), n in self.pair_counts(attr, given_attr).items():
                    index.setdefault(vb, {})[va] = n
            else:
                for (vb, va), n in self.pair_counts(given_attr, attr).items():
                    index.setdefault(vb, {})[va] = n
            self._cooc_index[index_key] = index
        hit = index.get(given_value)
        # Shared cache — callers must not mutate.  Every caller (the
        # naive pruner, the co-occurrence featurizer, SCARE's candidate
        # scan) only reads, so the per-call defensive copy the naive
        # implementation implies is skipped on this hot path.
        return hit if hit is not None else {}

    # ------------------------------------------------------------------
    def drop_caches(self) -> None:
        """Forget every memoised count (also called by ``Engine.refresh``)."""
        super().invalidate()
        self._cooc_index.clear()
        self._code_counts.clear()
        self._joint_codes.clear()
        self._conditional.clear()

    def invalidate(self) -> None:
        """Drop caches and re-encode the store after dataset mutation."""
        self.drop_caches()
        self._engine.refresh()
