"""Multi-core sharded grounding: a process-pool wrapper around any backend.

HoloClean's original system leans on the DBMS to parallelize grounding
(Rekatsinas et al., VLDB 2017, §4); this module is the reproduction's
equivalent: a :class:`ParallelBackend` that wraps an inner backend and fans
the engine's deterministic, independent work units — value-bucket ranges of
a symmetric join, probe-row ranges of an asymmetric join, bucket ranges of
a candidate-domain join, and the compiler-level prune / featurize / factor
tasks — out to a ``multiprocessing`` pool, merging results back in
canonical order so every artifact stays **byte-identical** to the
single-process oracle.

Workers receive the dictionary-encoded :class:`ColumnStore` columns once,
through one ``multiprocessing.shared_memory`` block of ``int32`` codes
(not per-chunk pickles), rebuild the dataset and engine from it at pool
start, and keep per-phase heavy objects (domain pruner, factor-table
builder, featurizer) cached for the pool's lifetime.  The pool uses the
``fork`` start method; where that is unavailable, or pool / shared-memory
creation fails, every sharded operation silently degrades to the inner
backend — parallelism is an optimization, never a requirement.

Determinism notes (each proved byte-identical in ``tests/engine``):

* symmetric joins shard by contiguous ranges of value buckets in emission
  (first-member) order; bucket first members are distinct, so shard
  concatenation equals the global ``intra_group_pairs`` stream;
* asymmetric joins shard by contiguous probe-row ranges (the build side is
  global), preserving probe order; the parent applies the back-edge dedup;
* domain joins shard by contiguous bucket ranges with within-shard
  first-bucket dedup; the parent re-runs the global first-occurrence dedup
  over the concatenation, which commutes with sharding.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from dataclasses import dataclass

import numpy as np

from repro.dataset.dataset import Dataset
from repro.engine import ops
from repro.engine.backend import (
    Backend,
    JoinAttrs,
    _BaseBackend,
    make_backend,
    register_backend,
)
from repro.engine.store import ColumnStore
from repro.obs.trace import deep_span

_EMPTY = np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# Shared-memory shipping of the column store
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SharedStoreSpec:
    """Everything a worker needs to rebuild the engine's world.

    The int32 code columns travel through one shared-memory block (viewed
    zero-copy by every worker); the value dictionaries and schema are small
    and ride along in the spec itself.
    """

    shm_name: str
    num_rows: int
    attributes: tuple[str, ...]
    values: dict[str, list[str]]
    schema: object
    dataset_name: str
    start_method: str


def _share_store(store: ColumnStore):
    """Copy the store's coded columns into one shared-memory block."""
    from multiprocessing import shared_memory

    attrs = tuple(store.attributes)
    rows = store.num_rows
    shm = shared_memory.SharedMemory(create=True, size=max(4 * rows * len(attrs), 1))
    block = np.ndarray((len(attrs), rows), dtype=np.int32, buffer=shm.buf)
    for i, attr in enumerate(attrs):
        block[i, :] = store.codes(attr)
    spec = SharedStoreSpec(
        shm_name=shm.name,
        num_rows=rows,
        attributes=attrs,
        values={a: store.values(a) for a in attrs},
        schema=store.dataset.schema,
        dataset_name=store.dataset.name,
        start_method=multiprocessing.get_start_method(allow_none=True) or "fork",
    )
    return shm, spec


class _WorkerState:
    """One worker's reconstruction of the parent's engine world.

    Built once per pool (re)start; byte-identical to the parent because
    every piece is a deterministic function of the shared coded columns.
    """

    def __init__(self, spec: SharedStoreSpec, context: dict):
        from multiprocessing import shared_memory

        self.spec = spec
        self.context = context
        self.caches: dict = {}
        self.shm = shared_memory.SharedMemory(name=spec.shm_name)
        # Close (not unlink — the parent owns the segment) when this
        # state is collected, so a worker that outlives one pool start
        # does not accumulate mappings.
        weakref.finalize(self, _close_shm, self.shm)
        if spec.start_method != "fork":
            # Attaching registers the segment with this process's resource
            # tracker, which would unlink it when the worker exits.  Under
            # fork the tracker is shared with the parent (which owns the
            # segment), so no unregister is needed — or wanted.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self.shm._name, "shared_memory")
            except Exception:
                pass
        block = np.ndarray(
            (len(spec.attributes), spec.num_rows), dtype=np.int32, buffer=self.shm.buf
        )
        codes = {attr: block[i] for i, attr in enumerate(spec.attributes)}
        dataset = Dataset(spec.schema, name=spec.dataset_name)
        columns = []
        for attr in spec.attributes:
            values = spec.values[attr]
            columns.append(
                [None if c < 0 else values[c] for c in codes[attr].tolist()]
            )
        if columns:
            dataset._rows = [list(row) for row in zip(*columns)]
        else:
            dataset._rows = [[] for _ in range(spec.num_rows)]
        store = ColumnStore.from_arrays(dataset, codes, spec.values)

        from repro.engine import Engine

        engine = Engine(dataset)
        engine._store = store
        self.dataset = dataset
        self.engine = engine
        self.backend = engine.backend


_WORKER: _WorkerState | None = None


def _init_worker(spec: SharedStoreSpec, context: dict) -> None:
    global _WORKER
    _WORKER = _WorkerState(spec, context)


# ---------------------------------------------------------------------------
# Deterministic shard plans (computed identically by parent and workers)
# ---------------------------------------------------------------------------
def _symmetric_plan(keys: np.ndarray):
    """The bucket layout ``ops.intra_group_pairs`` walks, in emission order.

    Returns ``(order, starts, sizes, emission)`` where ``order`` holds the
    non-NULL rows sorted by key (rows ascending within a bucket), buckets
    are delimited by ``starts``/``sizes``, and ``emission`` lists bucket
    indices by their first (minimum) member row — the order the naive hash
    join, and therefore ``intra_group_pairs``, emits buckets in.
    """
    keys = np.asarray(keys)
    rows = np.nonzero(keys >= 0)[0]
    if not len(rows):
        return None
    order = rows[np.argsort(keys[rows], kind="stable")]
    starts, sizes = ops.bucket_extents(keys[order])
    emission = np.argsort(order[starts], kind="stable")
    return order, starts, sizes, emission


def _expand_symmetric_range(plan, lo: int, hi: int):
    """Nested-loop pairs of emission-order buckets ``[lo, hi)`` of a plan."""
    order, starts, sizes, emission = plan
    pick = emission[lo:hi]
    if not len(pick):
        return _EMPTY, _EMPTY
    pick_sizes = sizes[pick]
    members = order[ops.expand_ranges(starts[pick], pick_sizes)]
    if not len(members):
        return _EMPTY, _EMPTY
    pick_starts = np.concatenate(([0], np.cumsum(pick_sizes)[:-1]))
    left, right, _ = ops._expand_contiguous_pairs(members, pick_starts, pick_sizes)
    return (
        left.astype(np.int64, copy=False),
        right.astype(np.int64, copy=False),
    )


def _balanced_ranges(weights: np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, len(weights))`` into ≤ ``parts`` contiguous ranges of
    roughly equal total weight (deterministic, empty ranges dropped)."""
    n = len(weights)
    if n == 0:
        return []
    cumulative = np.cumsum(weights)
    total = int(cumulative[-1])
    if total <= 0 or parts <= 1:
        return [(0, n)]
    out: list[tuple[int, int]] = []
    lo = 0
    for k in range(parts):
        target = total * (k + 1) // parts
        hi = int(np.searchsorted(cumulative, target, side="left")) + 1
        hi = min(hi, n)
        if hi > lo:
            out.append((lo, hi))
            lo = hi
    if lo < n:
        out.append((lo, n))
    return out


def _concat_pairs(results) -> tuple[np.ndarray, np.ndarray]:
    lefts = [left for left, _ in results]
    rights = [right for _, right in results]
    if not lefts:
        return _EMPTY, _EMPTY
    return np.concatenate(lefts), np.concatenate(rights)


# ---------------------------------------------------------------------------
# Worker-side task handlers
# ---------------------------------------------------------------------------
def _task_symmetric(state: _WorkerState, join_attrs, lo: int, hi: int):
    plan = state.caches.get(("sym", join_attrs))
    if plan is None:
        key, _, _ = state.backend._keys_for(list(join_attrs))
        plan = _symmetric_plan(key)
        state.caches[("sym", join_attrs)] = plan
    if plan is None:
        return _EMPTY, _EMPTY
    return _expand_symmetric_range(plan, lo, hi)


def _task_asymmetric(state: _WorkerState, join_attrs, lo: int, hi: int):
    key1, key2, _ = state.backend._keys_for(list(join_attrs))
    masked = np.full(len(key1), -1, dtype=np.int64)
    masked[lo:hi] = key1[lo:hi]
    return ops.matching_pairs(masked, key2)


def _task_domain(state: _WorkerState, bucket_ids, member_tids):
    return ops.bucket_join_pairs(bucket_ids, member_tids)


def _task_block(state: _WorkerState, members, start: int, budget: int):
    left, right, _ = ops.bucket_pair_block(members, start, budget)
    return left, right


def _task_prune(state: _WorkerState, cells, params):
    # Workers replay the parent's set-at-a-time kernel (one vectorized
    # pass per attribute group of the chunk), not per-cell DomainPruner
    # clones — pruning a shard is the same computation as pruning the
    # whole cell set restricted to it, so results merge byte-identically.
    if state.caches.get("pruner_params") != params:
        from repro.core.vector_domain import VectorDomainPruner

        tau, max_domain, strategy, attributes = params
        state.caches["pruner"] = VectorDomainPruner(
            state.engine,
            tau=tau,
            max_domain=max_domain,
            attributes=list(attributes),
            strategy=strategy,
        )
        state.caches["pruner_params"] = params
    return state.caches["pruner"].prune(cells)


def _task_factor(state: _WorkerState, ci: int, left, right):
    builder = state.caches.get("factor_builder")
    if builder is None:
        from repro.core.factor_tables import VectorFactorTableBuilder

        constraints, variables, domains, max_table_cells, weight = state.context[
            "factors"
        ]
        builder = VectorFactorTableBuilder(
            state.engine, state.dataset, variables, domains, max_table_cells, weight
        )
        state.caches["factor_builder"] = builder
        state.caches["factor_constraints"] = constraints
    dc = state.caches["factor_constraints"][ci]
    before = dict(builder.stats)
    factors, skipped = builder._ground_chunk(dc, left, right)
    delta = {key: builder.stats[key] - before[key] for key in builder.stats}
    return factors, skipped, delta


def _task_dc_features(state: _WorkerState, di: int, rank: int, mode: str):
    featurizer = state.caches.get("featurizer")
    if featurizer is None:
        from repro.core.featurize import FeaturizationContext
        from repro.core.vector_featurize import VectorFeaturizer

        specs, constraints, config, sequence = state.context["featurize"]
        fctx = FeaturizationContext(state.dataset, state.engine.statistics(), config)
        featurizer = VectorFeaturizer(state.engine, fctx, constraints)
        featurizer._specs = list(specs)
        featurizer._build_blocks()
        state.caches["featurizer"] = featurizer
        state.caches["featurize_sequence"] = sequence
    dc = state.caches["featurize_sequence"][di]
    if mode == "single":
        return featurizer._single_dc(rank, di, dc)
    return featurizer._pair_dc(rank, di, dc)


_TASK_HANDLERS = {
    "sym": _task_symmetric,
    "asym": _task_asymmetric,
    "domain": _task_domain,
    "block": _task_block,
    "prune": _task_prune,
    "factor": _task_factor,
    "dcfeat": _task_dc_features,
}


def _run_task(task):
    return _TASK_HANDLERS[task[0]](_WORKER, *task[1:])


def _close_shm(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # A live ndarray view still references the buffer; the mapping
        # is released with the process instead.
        pass


def _release_handles(handles: dict) -> None:
    pool = handles.pop("pool", None)
    if pool is not None:
        pool.terminate()
    shm = handles.pop("shm", None)
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
class ParallelBackend(_BaseBackend):
    """Fan deterministic grounding work units out to a worker pool.

    Wraps an ``inner`` backend (by registry name or instance); counts and
    under-threshold joins delegate to it unchanged, large joins shard.  The
    compiler-level fan-outs (``prune_cells``, ``dc_feature_batches``,
    ``factor_chunks``, ``stream_pair_units``) return ``None`` when the pool
    is unavailable so callers can fall back to their serial path.

    ``configure(**context)`` sets the phase context workers need (factor /
    featurize artifacts); changing it restarts the pool, and the ``fork``
    start method hands the context to workers without pickling.
    """

    name = "parallel"

    def __init__(
        self,
        store: ColumnStore,
        workers: int | None = None,
        inner: str | Backend = "numpy",
        min_pairs: int = 4096,
    ):
        super().__init__(store)
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        if isinstance(inner, str):
            if inner == self.name:
                raise ValueError("parallel backend cannot wrap itself")
            inner = make_backend(store, inner)
        self.inner: Backend = inner
        #: Joins estimated below this many pairs run on the inner backend
        #: (fan-out overhead would dominate).  Tests set 0 to force shards.
        self.min_pairs = int(min_pairs)
        #: Fan-out counters surfaced as ``grounding_shards_*``: configured
        #: worker count, shard_map calls, and total work units dispatched.
        self.shard_stats = {"workers": self.workers, "calls": 0, "tasks": 0}
        self._context: dict = {}
        self._spec: SharedStoreSpec | None = None
        self._broken = False
        self._handles: dict = {}
        self._finalizer = weakref.finalize(self, _release_handles, self._handles)

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self):
        if self._broken:
            return None
        pool = self._handles.get("pool")
        if pool is not None:
            return pool
        if "fork" not in multiprocessing.get_all_start_methods():
            self._broken = True
            return None
        try:
            if self._handles.get("shm") is None:
                shm, spec = _share_store(self.store)
                self._handles["shm"] = shm
                self._spec = spec
            ctx = multiprocessing.get_context("fork")
            pool = ctx.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self._spec, dict(self._context)),
            )
        except Exception:
            self._broken = True
            return None
        self._handles["pool"] = pool
        return pool

    def _close_pool(self) -> None:
        pool = self._handles.pop("pool", None)
        if pool is not None:
            pool.terminate()
            pool.join()

    def available(self) -> bool:
        """Whether sharded dispatch is currently possible."""
        return self._ensure_pool() is not None

    def configure(self, **context) -> None:
        """Install phase context for workers (restarts the pool)."""
        self._context.update(context)
        self._close_pool()

    def close(self) -> None:
        """Terminate the pool, release shared memory, close the inner."""
        self._close_pool()
        shm = self._handles.pop("shm", None)
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        inner_close = getattr(self.inner, "close", None)
        if inner_close is not None:
            inner_close()

    # -- generic ordered fan-out ----------------------------------------
    def _try_map(self, tasks: list[tuple], label: str):
        """Run ``tasks`` on the pool, results in task order; None if broken."""
        pool = self._ensure_pool()
        if pool is None:
            return None
        self.shard_stats["calls"] += 1
        self.shard_stats["tasks"] += len(tasks)
        try:
            with deep_span(
                "parallel.shard_map",
                kind=label,
                tasks=len(tasks),
                workers=self.workers,
            ):
                return pool.map(_run_task, tasks, chunksize=1)
        except Exception:
            self._broken = True
            self._close_pool()
            return None

    # -- counts: delegate ------------------------------------------------
    def value_counts(self, attribute: str) -> np.ndarray:
        return self.inner.value_counts(attribute)

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        return self.inner.pair_value_counts(attr_a, attr_b)

    # -- joins: sharded --------------------------------------------------
    def join_pairs(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray]:
        with deep_span(
            "engine.join_pairs", backend=self.name, join=str(join_attrs)
        ) as sp:
            key1, key2, symmetric = self._keys_for(join_attrs)
            if symmetric:
                left, right = self._sharded_symmetric(join_attrs, key1)
            else:
                left, right = self._sharded_asymmetric(join_attrs, key1, key2)
                left, right = ops.dedup_ordered_pairs(left, right, key1)
            if sp is not None:
                sp.attributes["pairs"] = int(len(left))
            return left, right

    def _sharded_symmetric(self, join_attrs: JoinAttrs, keys: np.ndarray):
        if ops.estimate_symmetric_pairs(keys) < self.min_pairs:
            return self.inner._symmetric_pairs(keys)
        plan = _symmetric_plan(keys)
        if plan is None:
            return self.inner._symmetric_pairs(keys)
        _, _, sizes, emission = plan
        weights = sizes[emission] * (sizes[emission] - 1) // 2
        ranges = _balanced_ranges(weights, self.workers)
        if len(ranges) <= 1:
            return self.inner._symmetric_pairs(keys)
        spec = tuple(tuple(pair) for pair in join_attrs)
        results = self._try_map(
            [("sym", spec, lo, hi) for lo, hi in ranges], "join_pairs"
        )
        if results is None:
            return self.inner._symmetric_pairs(keys)
        return _concat_pairs(results)

    def _sharded_asymmetric(
        self, join_attrs: JoinAttrs, key1: np.ndarray, key2: np.ndarray
    ):
        if ops.estimate_matching_pairs(key1, key2) < self.min_pairs:
            return self.inner._asymmetric_pairs(key1, key2)
        build = np.sort(key2[key2 >= 0], kind="stable")
        probe_rows = np.nonzero(key1 >= 0)[0]
        if not len(build) or not len(probe_rows):
            return self.inner._asymmetric_pairs(key1, key2)
        probe_keys = key1[probe_rows]
        counts = np.searchsorted(build, probe_keys, side="right") - np.searchsorted(
            build, probe_keys, side="left"
        )
        ranges = _balanced_ranges(counts, self.workers)
        if len(ranges) <= 1:
            return self.inner._asymmetric_pairs(key1, key2)
        spec = tuple(tuple(pair) for pair in join_attrs)
        # Contiguous probe-index ranges become contiguous row ranges; the
        # build side stays global in every shard, so concatenating shards
        # in range order reproduces the global probe order exactly.
        tasks = [
            ("asym", spec, int(probe_rows[lo]), int(probe_rows[hi - 1]) + 1)
            for lo, hi in ranges
        ]
        results = self._try_map(tasks, "join_pairs")
        if results is None:
            return self.inner._asymmetric_pairs(key1, key2)
        return _concat_pairs(results)

    def _domain_pairs(self, bucket_ids: np.ndarray, member_tids: np.ndarray):
        starts, sizes = ops.bucket_extents(bucket_ids)
        weights = sizes * (sizes - 1) // 2
        if int(weights.sum()) < self.min_pairs:
            return self.inner._domain_pairs(bucket_ids, member_tids)
        ranges = _balanced_ranges(weights, self.workers)
        if len(ranges) <= 1:
            return self.inner._domain_pairs(bucket_ids, member_tids)
        tasks = []
        for lo, hi in ranges:
            a = int(starts[lo])
            b = int(starts[hi - 1] + sizes[hi - 1])
            tasks.append(("domain", bucket_ids[a:b], member_tids[a:b]))
        results = self._try_map(tasks, "domain_join_pairs")
        if results is None:
            return self.inner._domain_pairs(bucket_ids, member_tids)
        left, right = _concat_pairs(results)
        if not len(left):
            return left, right
        # Shards dedup within themselves; a pair spanning two shards'
        # buckets needs the global first-occurrence pass, same as
        # ops.bucket_join_pairs runs over the unsharded stream.
        stride = int(member_tids.max()) + 1
        _, first = np.unique(left * stride + right, return_index=True)
        keep = np.sort(first)
        return left[keep], right[keep]

    # -- compiler-level fan-outs -----------------------------------------
    def prune_cells(self, cells: list, params: tuple):
        """Candidate domains per cell, in cell order; None if unavailable.

        ``params`` is ``(tau, max_domain, strategy, attributes)`` — enough
        for workers to rebuild the pruner over their own statistics.
        """
        if not cells:
            return []
        chunk = max(1, (len(cells) + self.workers * 4 - 1) // (self.workers * 4))
        tasks = [
            ("prune", cells[i : i + chunk], params)
            for i in range(0, len(cells), chunk)
        ]
        results = self._try_map(tasks, "prune_domains")
        if results is None:
            return None
        return [domain for batch in results for domain in batch]

    def dc_feature_batches(self, tasks: list[tuple[int, int, str]]):
        """Entry batches for ``(di, rank, mode)`` DC tasks, in task order."""
        return self._try_map(
            [("dcfeat", di, rank, mode) for di, rank, mode in tasks],
            "featurize_dc",
        )

    def factor_chunks(self, tasks: list[tuple[int, np.ndarray, np.ndarray]]):
        """Ground ``(ci, left, right)`` chunks; results in chunk order."""
        return self._try_map(
            [("factor", ci, left, right) for ci, left, right in tasks],
            "ground_factors",
        )

    def stream_pair_units(self, units: list[tuple]):
        """Execute enumerator stream units (``domain`` / ``block``) in order."""
        for unit in units:
            if unit[0] not in ("domain", "block"):
                raise ValueError(f"unknown stream unit kind {unit[0]!r}")
        return self._try_map(list(units), "pair_stream")


register_backend("parallel", ParallelBackend)
