"""Pluggable relational backends for the grounding engine.

The :class:`Backend` protocol is the narrow waist between HoloClean's
grounding logic and whatever executes the relational plan.  Two
implementations ship:

* :class:`NumpyBackend` — the default; joins and counts are vectorized
  NumPy over the :class:`~repro.engine.store.ColumnStore`.
* :class:`SQLiteBackend` — materialises the coded columns into an
  in-memory ``sqlite3`` database and runs the same operations as SQL,
  proving the paper's DBMS-grounding story end-to-end behind the same
  interface.

Both backends return identical arrays in identical order, so they are
interchangeable anywhere the engine is used.
"""

from __future__ import annotations

import itertools
import sqlite3
from array import array
from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine import ops
from repro.engine.store import ColumnStore
from repro.obs.trace import deep_span

#: A join specification: one ``(t1 attribute, t2 attribute)`` pair per
#: equality predicate.
JoinAttrs = list[tuple[str, str]]


@runtime_checkable
class Backend(Protocol):
    """What the grounding engine needs from an execution backend."""

    name: str
    store: ColumnStore

    def value_counts(self, attribute: str) -> np.ndarray:
        """Occurrences per code of one attribute (dense, NULLs excluded)."""
        ...

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        """``(k, 3)`` rows of ``[code_a, code_b, count]`` co-occurrences."""
        ...

    def join_pairs(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray]:
        """Tuple-id pairs whose join keys coincide (see :class:`_BaseBackend`)."""
        ...

    def estimated_join_pairs(self, join_attrs: JoinAttrs) -> int:
        """Pairs :meth:`join_pairs` would materialise (histogram estimate).

        Production callers (the violation detector's memory guard) rely on
        this to reroute pathological joins to a streaming path before any
        pair array is allocated.
        """
        ...

    def domain_join_pairs(self, bucket_ids: np.ndarray,
                          member_tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate-domain bucket join for DC-factor grounding.

        Input is a normalised bucket membership (one row per distinct
        ``(bucket, tid)``, sorted by ``(bucket, tid)`` — see
        :func:`~repro.engine.ops.bucket_memberships`); output is every
        unordered tuple pair sharing a bucket, deduped to its first
        bucket, in the naive enumerator's exact emission order.
        """
        ...


class _BaseBackend:
    """Shared key construction; subclasses supply the join executors.

    ``join_pairs`` reproduces the naive detector's pair stream exactly:
    symmetric joins (same attributes on both sides) yield unordered pairs
    ``left < right`` in bucket order; asymmetric joins yield ordered
    pairs in probe order with the naive back-edge dedup applied.
    """

    name = "base"

    def __init__(self, store: ColumnStore):
        self.store = store
        #: join_attrs → (key1, key2, symmetric); safe because the store is
        #: an immutable snapshot.  Lets estimated_join_pairs + join_pairs
        #: share one composite-key construction per constraint.
        self._key_cache: dict[tuple, tuple[np.ndarray, np.ndarray, bool]] = {}

    # -- keys -----------------------------------------------------------
    def _keys_for(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray, bool]:
        cache_key = tuple(join_attrs)
        cached = self._key_cache.get(cache_key)
        if cached is None:
            t1_attrs = [a for a, _ in join_attrs]
            t2_attrs = [b for _, b in join_attrs]
            if t1_attrs == t2_attrs:
                key = ops.combine_codes(
                    [self.store.codes(a) for a in t1_attrs])
                cached = (key, key, True)
            else:
                cols1, cols2 = [], []
                for attr1, attr2 in join_attrs:
                    shared1, shared2 = self.store.shared_codes(attr1, attr2)
                    cols1.append(shared1)
                    cols2.append(shared2)
                key1, key2 = ops.combine_codes_pairwise(cols1, cols2)
                cached = (key1, key2, False)
            self._key_cache[cache_key] = cached
        return cached

    def join_pairs(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray]:
        with deep_span("engine.join_pairs", backend=self.name,
                       join=str(join_attrs)) as sp:
            key1, key2, symmetric = self._keys_for(join_attrs)
            if symmetric:
                left, right = self._symmetric_pairs(key1)
            else:
                left, right = self._asymmetric_pairs(key1, key2)
                left, right = ops.dedup_ordered_pairs(left, right, key1)
            if sp is not None:
                sp.attributes["pairs"] = int(len(left))
            return left, right

    def estimated_join_pairs(self, join_attrs: JoinAttrs) -> int:
        """Pairs the join would materialise, from key histograms only.

        O(rows) — lets callers bail out to a streaming path before a
        pathological join (near-constant key) allocates huge arrays.
        """
        key1, key2, symmetric = self._keys_for(join_attrs)
        if symmetric:
            return ops.estimate_symmetric_pairs(key1)
        return ops.estimate_matching_pairs(key1, key2)

    def domain_join_pairs(self, bucket_ids: np.ndarray,
                          member_tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        bucket_ids = np.asarray(bucket_ids, dtype=np.int64)
        member_tids = np.asarray(member_tids, dtype=np.int64)
        if not len(bucket_ids):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        with deep_span("engine.domain_join_pairs", backend=self.name,
                       buckets=int(bucket_ids[-1]) + 1) as sp:
            left, right = self._domain_pairs(bucket_ids, member_tids)
            if sp is not None:
                sp.attributes["pairs"] = int(len(left))
            return left, right

    # -- executors (subclass responsibility) ----------------------------
    def _symmetric_pairs(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _asymmetric_pairs(self, key1: np.ndarray,
                          key2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _domain_pairs(self, bucket_ids: np.ndarray,
                      member_tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class NumpyBackend(_BaseBackend):
    """Vectorized NumPy execution directly over the column store."""

    name = "numpy"

    def value_counts(self, attribute: str) -> np.ndarray:
        return ops.value_counts(self.store.codes(attribute),
                                self.store.cardinality(attribute))

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        return ops.pair_code_counts(self.store.codes(attr_a),
                                    self.store.codes(attr_b),
                                    self.store.cardinality(attr_b))

    def _symmetric_pairs(self, keys: np.ndarray):
        return ops.intra_group_pairs(keys)

    def _asymmetric_pairs(self, key1: np.ndarray, key2: np.ndarray):
        return ops.matching_pairs(key1, key2)

    def _domain_pairs(self, bucket_ids: np.ndarray, member_tids: np.ndarray):
        return ops.bucket_join_pairs(bucket_ids, member_tids)


class SQLiteBackend(_BaseBackend):
    """The same relational plan executed by an in-memory SQL DBMS.

    The coded columns are loaded once into a table ``cells(tid, c0..ck)``
    (codes as INTEGER, NULL for missing); counts are ``GROUP BY`` queries
    and joins are indexed self-joins over per-call key tables.
    """

    name = "sqlite"

    def __init__(self, store: ColumnStore):
        super().__init__(store)
        self._db = sqlite3.connect(":memory:")
        self._column_names = {a: f"c{i}"
                              for i, a in enumerate(store.attributes)}
        self._load()

    def _load(self) -> None:
        cols = ", ".join(f"{c} INTEGER" for c in self._column_names.values())
        self._db.execute(f"CREATE TABLE cells (tid INTEGER PRIMARY KEY, {cols})")
        columns = [self.store.codes(a) for a in self.store.attributes]
        rows = (
            (tid, *(int(col[tid]) if col[tid] >= 0 else None for col in columns))
            for tid in range(self.store.num_rows)
        )
        placeholders = ", ".join("?" * (len(columns) + 1))
        self._db.executemany(f"INSERT INTO cells VALUES ({placeholders})", rows)
        self._db.commit()

    # -- counts ---------------------------------------------------------
    def value_counts(self, attribute: str) -> np.ndarray:
        col = self._column_names[attribute]
        out = np.zeros(self.store.cardinality(attribute), dtype=np.int64)
        query = (f"SELECT {col}, COUNT(*) FROM cells "
                 f"WHERE {col} IS NOT NULL GROUP BY {col}")
        for code, count in self._db.execute(query):
            out[code] = count
        return out

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        ca, cb = self._column_names[attr_a], self._column_names[attr_b]
        query = (f"SELECT {ca}, {cb}, COUNT(*) FROM cells "
                 f"WHERE {ca} IS NOT NULL AND {cb} IS NOT NULL "
                 f"GROUP BY {ca}, {cb} ORDER BY {ca}, {cb}")
        return self._fetch_columns(self._db.execute(query), width=3)

    # -- joins ----------------------------------------------------------
    def _key_table(self, *keys: np.ndarray) -> list[str]:
        """(Re)create the temp key table ``jk`` and return its key columns."""
        names = [f"k{i}" for i in range(len(keys))]
        self._db.execute("DROP TABLE IF EXISTS jk")
        cols = ", ".join(f"{k} INTEGER" for k in names)
        self._db.execute(f"CREATE TEMP TABLE jk (tid INTEGER PRIMARY KEY, {cols})")
        rows = zip(range(len(keys[0])),
                   *[(int(v) if v >= 0 else None for v in key) for key in keys])
        placeholders = ", ".join("?" * (len(keys) + 1))
        self._db.executemany(f"INSERT INTO jk VALUES ({placeholders})", rows)
        for k in names:
            self._db.execute(f"CREATE INDEX jk_{k} ON jk ({k})")
        return names

    #: Rows fetched per ``fetchmany`` round trip: large enough to amortise
    #: the cursor call, small enough that the transient row tuples of one
    #: batch stay cache-resident.
    FETCH_BATCH = 65_536

    @classmethod
    def _fetch_columns(cls, cursor: sqlite3.Cursor, width: int) -> np.ndarray:
        """Drain a cursor into a ``(rows, width)`` int64 array.

        Fetches in bounded ``fetchmany`` batches and appends through an
        ``array``-module adapter, so only one batch of Python row tuples
        is ever alive — not the whole result set (the ROADMAP's
        row-tuple-materialisation issue).
        """
        adapter = array("q")
        while True:
            rows = cursor.fetchmany(cls.FETCH_BATCH)
            if not rows:
                break
            adapter.extend(itertools.chain.from_iterable(rows))
        if not adapter:
            return np.empty((0, width), dtype=np.int64)
        return np.frombuffer(adapter, dtype=np.int64).reshape(-1, width)

    @classmethod
    def _fetch_pairs(cls, cursor: sqlite3.Cursor) -> tuple[np.ndarray, np.ndarray]:
        table = cls._fetch_columns(cursor, width=2)
        return (np.ascontiguousarray(table[:, 0]),
                np.ascontiguousarray(table[:, 1]))

    def _symmetric_pairs(self, keys: np.ndarray):
        (k,) = self._key_table(keys)
        # Bucket order = order of each key's first tuple, as in the naive
        # hash join (and the NumPy backend).
        query = (
            "SELECT a.tid, b.tid FROM jk a "
            f"JOIN jk b ON b.{k} = a.{k} AND b.tid > a.tid "
            f"JOIN (SELECT {k} AS key, MIN(tid) AS first FROM jk "
            f"      WHERE {k} IS NOT NULL GROUP BY {k}) g ON g.key = a.{k} "
            "ORDER BY g.first, a.tid, b.tid")
        pairs = self._fetch_pairs(self._db.execute(query))
        self._db.execute("DROP TABLE IF EXISTS jk")
        return pairs

    def _asymmetric_pairs(self, key1: np.ndarray, key2: np.ndarray):
        k1, k2 = self._key_table(key1, key2)
        query = (
            "SELECT a.tid, b.tid FROM jk a "
            f"JOIN jk b ON b.{k2} = a.{k1} AND b.tid != a.tid "
            "ORDER BY a.tid, b.tid")
        pairs = self._fetch_pairs(self._db.execute(query))
        self._db.execute("DROP TABLE IF EXISTS jk")
        return pairs

    def _domain_pairs(self, bucket_ids: np.ndarray, member_tids: np.ndarray):
        """Candidate-domain bucket join as SQL over a temp membership table.

        A pair is grouped to its smallest (= first-seen) bucket; ordering
        by ``(that bucket, t1, t2)`` reproduces the naive enumerator's
        bucket-walk emission order.
        """
        self._db.execute("DROP TABLE IF EXISTS dm")
        self._db.execute("CREATE TEMP TABLE dm (b INTEGER, tid INTEGER)")
        self._db.executemany(
            "INSERT INTO dm VALUES (?, ?)",
            zip((int(b) for b in bucket_ids), (int(t) for t in member_tids)))
        self._db.execute("CREATE INDEX dm_b ON dm (b)")
        query = (
            "SELECT t1, t2 FROM ("
            "  SELECT a.tid AS t1, b.tid AS t2, MIN(a.b) AS first "
            "  FROM dm a JOIN dm b ON b.b = a.b AND b.tid > a.tid "
            "  GROUP BY a.tid, b.tid) "
            "ORDER BY first, t1, t2")
        pairs = self._fetch_pairs(self._db.execute(query))
        self._db.execute("DROP TABLE IF EXISTS dm")
        return pairs

    def close(self) -> None:
        self._db.close()


_BACKENDS: dict[str, object] = {}


def register_backend(name: str, factory, *, replace: bool = False) -> None:
    """Register ``factory`` under ``name`` for :func:`make_backend`.

    ``factory`` is any callable ``factory(store, **options) -> Backend``
    (typically the backend class itself).  Backends self-register at
    import time — adding a DuckDB or Postgres backend needs no edits to
    the engine or to config validation, which both read this registry.
    Re-registering an existing name raises unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _BACKENDS and not replace:
        raise ValueError(f"engine backend {name!r} is already registered")
    _BACKENDS[name] = factory


def backend_names() -> tuple[str, ...]:
    """Currently registered backend names, in registration order."""
    return tuple(_BACKENDS)


def make_backend(store: ColumnStore, name: str = "numpy", **options) -> Backend:
    """Instantiate the named registered backend over a column store.

    ``options`` are forwarded to the backend factory (e.g.
    ``workers=`` / ``inner=`` for the parallel backend).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; pick one of {backend_names()}"
        ) from None
    return factory(store, **options)


register_backend("numpy", NumpyBackend)
register_backend("sqlite", SQLiteBackend)


def __getattr__(name: str):
    # ``BACKEND_NAMES`` is kept for backwards compatibility but computed
    # on access: a module-load-time snapshot would miss backends that
    # register after this module imports (e.g. "parallel").
    if name == "BACKEND_NAMES":
        return backend_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
