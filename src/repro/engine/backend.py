"""Pluggable relational backends for the grounding engine.

The :class:`Backend` protocol is the narrow waist between HoloClean's
grounding logic and whatever executes the relational plan.  Two
implementations ship:

* :class:`NumpyBackend` — the default; joins and counts are vectorized
  NumPy over the :class:`~repro.engine.store.ColumnStore`.
* :class:`SQLiteBackend` — materialises the coded columns into an
  in-memory ``sqlite3`` database and runs the same operations as SQL,
  proving the paper's DBMS-grounding story end-to-end behind the same
  interface.

Both backends return identical arrays in identical order, so they are
interchangeable anywhere the engine is used.
"""

from __future__ import annotations

import sqlite3
from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine import ops
from repro.engine.store import ColumnStore

#: A join specification: one ``(t1 attribute, t2 attribute)`` pair per
#: equality predicate.
JoinAttrs = list[tuple[str, str]]


@runtime_checkable
class Backend(Protocol):
    """What the grounding engine needs from an execution backend."""

    name: str
    store: ColumnStore

    def value_counts(self, attribute: str) -> np.ndarray:
        """Occurrences per code of one attribute (dense, NULLs excluded)."""
        ...

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        """``(k, 3)`` rows of ``[code_a, code_b, count]`` co-occurrences."""
        ...

    def join_pairs(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray]:
        """Tuple-id pairs whose join keys coincide (see :class:`_BaseBackend`)."""
        ...


class _BaseBackend:
    """Shared key construction; subclasses supply the join executors.

    ``join_pairs`` reproduces the naive detector's pair stream exactly:
    symmetric joins (same attributes on both sides) yield unordered pairs
    ``left < right`` in bucket order; asymmetric joins yield ordered
    pairs in probe order with the naive back-edge dedup applied.
    """

    name = "base"

    def __init__(self, store: ColumnStore):
        self.store = store
        #: join_attrs → (key1, key2, symmetric); safe because the store is
        #: an immutable snapshot.  Lets estimated_join_pairs + join_pairs
        #: share one composite-key construction per constraint.
        self._key_cache: dict[tuple, tuple[np.ndarray, np.ndarray, bool]] = {}

    # -- keys -----------------------------------------------------------
    def _keys_for(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray, bool]:
        cache_key = tuple(join_attrs)
        cached = self._key_cache.get(cache_key)
        if cached is None:
            t1_attrs = [a for a, _ in join_attrs]
            t2_attrs = [b for _, b in join_attrs]
            if t1_attrs == t2_attrs:
                key = ops.combine_codes(
                    [self.store.codes(a) for a in t1_attrs])
                cached = (key, key, True)
            else:
                cols1, cols2 = [], []
                for attr1, attr2 in join_attrs:
                    shared1, shared2 = self.store.shared_codes(attr1, attr2)
                    cols1.append(shared1)
                    cols2.append(shared2)
                key1, key2 = ops.combine_codes_pairwise(cols1, cols2)
                cached = (key1, key2, False)
            self._key_cache[cache_key] = cached
        return cached

    def join_pairs(self, join_attrs: JoinAttrs) -> tuple[np.ndarray, np.ndarray]:
        key1, key2, symmetric = self._keys_for(join_attrs)
        if symmetric:
            return self._symmetric_pairs(key1)
        left, right = self._asymmetric_pairs(key1, key2)
        return ops.dedup_ordered_pairs(left, right, key1)

    def estimated_join_pairs(self, join_attrs: JoinAttrs) -> int:
        """Pairs the join would materialise, from key histograms only.

        O(rows) — lets callers bail out to a streaming path before a
        pathological join (near-constant key) allocates huge arrays.
        """
        key1, key2, symmetric = self._keys_for(join_attrs)
        if symmetric:
            return ops.estimate_symmetric_pairs(key1)
        return ops.estimate_matching_pairs(key1, key2)

    # -- executors (subclass responsibility) ----------------------------
    def _symmetric_pairs(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _asymmetric_pairs(self, key1: np.ndarray,
                          key2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class NumpyBackend(_BaseBackend):
    """Vectorized NumPy execution directly over the column store."""

    name = "numpy"

    def value_counts(self, attribute: str) -> np.ndarray:
        return ops.value_counts(self.store.codes(attribute),
                                self.store.cardinality(attribute))

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        return ops.pair_code_counts(self.store.codes(attr_a),
                                    self.store.codes(attr_b),
                                    self.store.cardinality(attr_b))

    def _symmetric_pairs(self, keys: np.ndarray):
        return ops.intra_group_pairs(keys)

    def _asymmetric_pairs(self, key1: np.ndarray, key2: np.ndarray):
        return ops.matching_pairs(key1, key2)


class SQLiteBackend(_BaseBackend):
    """The same relational plan executed by an in-memory SQL DBMS.

    The coded columns are loaded once into a table ``cells(tid, c0..ck)``
    (codes as INTEGER, NULL for missing); counts are ``GROUP BY`` queries
    and joins are indexed self-joins over per-call key tables.
    """

    name = "sqlite"

    def __init__(self, store: ColumnStore):
        super().__init__(store)
        self._db = sqlite3.connect(":memory:")
        self._column_names = {a: f"c{i}"
                              for i, a in enumerate(store.attributes)}
        self._load()

    def _load(self) -> None:
        cols = ", ".join(f"{c} INTEGER" for c in self._column_names.values())
        self._db.execute(f"CREATE TABLE cells (tid INTEGER PRIMARY KEY, {cols})")
        columns = [self.store.codes(a) for a in self.store.attributes]
        rows = (
            (tid, *(int(col[tid]) if col[tid] >= 0 else None for col in columns))
            for tid in range(self.store.num_rows)
        )
        placeholders = ", ".join("?" * (len(columns) + 1))
        self._db.executemany(f"INSERT INTO cells VALUES ({placeholders})", rows)
        self._db.commit()

    # -- counts ---------------------------------------------------------
    def value_counts(self, attribute: str) -> np.ndarray:
        col = self._column_names[attribute]
        out = np.zeros(self.store.cardinality(attribute), dtype=np.int64)
        query = (f"SELECT {col}, COUNT(*) FROM cells "
                 f"WHERE {col} IS NOT NULL GROUP BY {col}")
        for code, count in self._db.execute(query):
            out[code] = count
        return out

    def pair_value_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        ca, cb = self._column_names[attr_a], self._column_names[attr_b]
        query = (f"SELECT {ca}, {cb}, COUNT(*) FROM cells "
                 f"WHERE {ca} IS NOT NULL AND {cb} IS NOT NULL "
                 f"GROUP BY {ca}, {cb} ORDER BY {ca}, {cb}")
        rows = self._db.execute(query).fetchall()
        if not rows:
            return np.empty((0, 3), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    # -- joins ----------------------------------------------------------
    def _key_table(self, *keys: np.ndarray) -> list[str]:
        """(Re)create the temp key table ``jk`` and return its key columns."""
        names = [f"k{i}" for i in range(len(keys))]
        self._db.execute("DROP TABLE IF EXISTS jk")
        cols = ", ".join(f"{k} INTEGER" for k in names)
        self._db.execute(f"CREATE TEMP TABLE jk (tid INTEGER PRIMARY KEY, {cols})")
        rows = zip(range(len(keys[0])),
                   *[(int(v) if v >= 0 else None for v in key) for key in keys])
        placeholders = ", ".join("?" * (len(keys) + 1))
        self._db.executemany(f"INSERT INTO jk VALUES ({placeholders})", rows)
        for k in names:
            self._db.execute(f"CREATE INDEX jk_{k} ON jk ({k})")
        return names

    @staticmethod
    def _as_pairs(rows: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        arr = np.asarray(rows, dtype=np.int64)
        return arr[:, 0], arr[:, 1]

    def _symmetric_pairs(self, keys: np.ndarray):
        (k,) = self._key_table(keys)
        # Bucket order = order of each key's first tuple, as in the naive
        # hash join (and the NumPy backend).
        query = (
            "SELECT a.tid, b.tid FROM jk a "
            f"JOIN jk b ON b.{k} = a.{k} AND b.tid > a.tid "
            f"JOIN (SELECT {k} AS key, MIN(tid) AS first FROM jk "
            f"      WHERE {k} IS NOT NULL GROUP BY {k}) g ON g.key = a.{k} "
            "ORDER BY g.first, a.tid, b.tid")
        pairs = self._as_pairs(self._db.execute(query).fetchall())
        self._db.execute("DROP TABLE IF EXISTS jk")
        return pairs

    def _asymmetric_pairs(self, key1: np.ndarray, key2: np.ndarray):
        k1, k2 = self._key_table(key1, key2)
        query = (
            "SELECT a.tid, b.tid FROM jk a "
            f"JOIN jk b ON b.{k2} = a.{k1} AND b.tid != a.tid "
            "ORDER BY a.tid, b.tid")
        pairs = self._as_pairs(self._db.execute(query).fetchall())
        self._db.execute("DROP TABLE IF EXISTS jk")
        return pairs

    def close(self) -> None:
        self._db.close()


_BACKENDS = {
    "numpy": NumpyBackend,
    "sqlite": SQLiteBackend,
}

#: Names accepted by :func:`make_backend` / ``HoloCleanConfig.engine_backend``.
BACKEND_NAMES = tuple(_BACKENDS)


def make_backend(store: ColumnStore, name: str = "numpy") -> Backend:
    """Instantiate the named backend over a column store."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; pick one of {BACKEND_NAMES}"
        ) from None
    return factory(store)
