"""Marginal-probability calibration buckets (Figure 6).

The paper validates that HoloClean's marginals carry rigorous semantics
by bucketing suggested repairs by marginal probability ([0.5–0.6) …
[0.9–1.0]) and measuring the error rate inside each bucket: higher
confidence should mean a lower error rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.repair import RepairResult
from repro.dataset.dataset import Dataset

#: Figure 6's bucket boundaries.
DEFAULT_BUCKETS = ((0.5, 0.6), (0.6, 0.7), (0.7, 0.8), (0.8, 0.9), (0.9, 1.0 + 1e-9))


@dataclass
class BucketReport:
    """Per-bucket repair counts and error rates."""

    buckets: tuple = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    errors: list[int] = field(default_factory=list)

    @property
    def error_rates(self) -> list[float | None]:
        """Error rate per bucket; None for empty buckets."""
        return [
            (e / c if c else None)
            for e, c in zip(self.errors, self.counts)
        ]

    def labels(self) -> list[str]:
        return [f"[{lo:.1f}-{hi if hi <= 1.0 else 1.0:.1f})"
                for lo, hi in self.buckets]

    def merge(self, other: "BucketReport") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge reports with different buckets")
        if not self.counts:
            self.counts = [0] * len(self.buckets)
            self.errors = [0] * len(self.buckets)
        for i in range(len(self.buckets)):
            self.counts[i] += other.counts[i]
            self.errors[i] += other.errors[i]


def bucket_error_rates(result: RepairResult, clean: Dataset,
                       buckets=DEFAULT_BUCKETS) -> BucketReport:
    """Bucket every *suggested repair* by confidence and score correctness.

    Mirrors the paper's experiment: only cells where HoloClean proposed a
    change are considered, and a repair is an error when the proposed
    value differs from the ground truth.
    """
    counts = [0] * len(buckets)
    errors = [0] * len(buckets)
    for cell, inference in result.repairs.items():
        confidence = inference.confidence
        truth = clean.cell_value(cell)
        for i, (lo, hi) in enumerate(buckets):
            if lo <= confidence < hi:
                counts[i] += 1
                if inference.chosen_value != truth:
                    errors[i] += 1
                break
    return BucketReport(buckets=buckets, counts=counts, errors=errors)
