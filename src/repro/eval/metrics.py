"""Repair-quality metrics (Section 6.1, "Evaluation Methodology").

* **Precision** — fraction of performed repairs that match the ground
  truth.
* **Recall** — correct repairs over the total number of errors.
* **F1** — ``2PR / (P + R)``.

A *repair* is any cell whose value differs between the dirty input and
the method's output; it is *correct* when the new value equals the clean
(ground-truth) value.  A method that performs no repairs has precision
and recall 0 by convention (the paper marks Holistic on Flights with
"did not perform any correct repairs").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.dataset import Cell, Dataset


@dataclass(frozen=True)
class RepairQuality:
    """Precision/recall/F1 plus the raw counts behind them."""

    precision: float
    recall: float
    f1: float
    correct_repairs: int
    total_repairs: int
    total_errors: int

    def row(self) -> dict[str, float]:
        return {"precision": self.precision, "recall": self.recall,
                "f1": self.f1}

    def __str__(self) -> str:
        return (f"P={self.precision:.3f} R={self.recall:.3f} "
                f"F1={self.f1:.3f} ({self.correct_repairs}/"
                f"{self.total_repairs} repairs, {self.total_errors} errors)")


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def evaluate_repairs(dirty: Dataset, repaired: Dataset, clean: Dataset,
                     error_cells: set[Cell] | None = None) -> RepairQuality:
    """Score a repaired dataset against ground truth.

    ``error_cells`` defaults to the dirty-vs-clean diff (exact for
    generated datasets; the paper had to label samples by hand).
    """
    if error_cells is None:
        error_cells = set(dirty.diff(clean))
    repairs = dirty.diff(repaired)
    correct = sum(
        1 for cell in repairs
        if repaired.cell_value(cell) == clean.cell_value(cell)
    )
    total_repairs = len(repairs)
    total_errors = len(error_cells)
    precision = correct / total_repairs if total_repairs else 0.0
    recall = correct / total_errors if total_errors else 0.0
    return RepairQuality(precision=precision, recall=recall,
                         f1=_f1(precision, recall),
                         correct_repairs=correct,
                         total_repairs=total_repairs,
                         total_errors=total_errors)


def evaluate_method_result(dirty: Dataset, result, clean: Dataset,
                           error_cells: set[Cell] | None = None) -> RepairQuality:
    """Convenience wrapper accepting HoloClean or baseline result objects."""
    repaired = getattr(result, "repaired", None)
    if repaired is None:
        raise TypeError(f"result object {type(result).__name__} has no "
                        f"'repaired' dataset")
    return evaluate_repairs(dirty, repaired, clean, error_cells=error_cells)
