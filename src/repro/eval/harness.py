"""Shared experiment harness used by the benchmark scripts.

Wraps one method run (HoloClean or a baseline) on one generated dataset
into a uniform :class:`MethodRun` with quality, runtime, and timeout
status — the row format of Tables 3 and 4.  HoloClean runs go through
the staged repair plan (:mod:`repro.core.stages`), the same execution
path as the facade, the CLI, and repair sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import MethodTimeout, RepairMethod
from repro.baselines.holistic import HolisticRepair
from repro.baselines.katara import KataraRepair
from repro.baselines.scare import ScareRepair
from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.core.repair import RepairResult
from repro.core.stages import RepairPlan
from repro.data.base import GeneratedDataset
from repro.eval.metrics import RepairQuality, evaluate_repairs
from repro.obs.report import RunReport


@dataclass
class MethodRun:
    """One (method, dataset) cell of Tables 3/4."""

    method: str
    dataset: str
    quality: RepairQuality | None
    runtime: float
    timed_out: bool = False
    timings: dict[str, float] = field(default_factory=dict)
    #: Telemetry of the run (HoloClean rows only; baselines leave it
    #: ``None``) — trace tree, metrics, config fingerprint.
    report: RunReport | None = None

    def table3_cells(self) -> list:
        if self.timed_out or self.quality is None:
            return [None, None, None]
        q = self.quality
        return [q.precision, q.recall, q.f1]


def holoclean_config_for(generated: GeneratedDataset,
                         base: HoloCleanConfig | None = None,
                         **overrides) -> HoloCleanConfig:
    """A config tuned to one dataset's Table 3 settings.

    Applies the per-dataset pruning threshold τ reported in Table 3 and
    the dataset's source-entity hint (Flights), then any overrides.
    """
    config = base or HoloCleanConfig()
    fields: dict = {
        "tau": generated.recommended_tau,
        "source_entity_attributes": generated.source_entity_attributes,
    }
    fields.update(overrides)
    return config.with_(**fields)


def run_holoclean(generated: GeneratedDataset,
                  config: HoloCleanConfig | None = None,
                  use_external: bool = False,
                  **overrides) -> tuple[MethodRun, RepairResult]:
    """Run HoloClean on a generated dataset and score it.

    External dictionaries are *off* by default to match Table 3
    ("Unless explicitly specified HoloClean does not make use of this
    external information"); pass ``use_external=True`` for the §6.3.2
    ablation.
    """
    cfg = holoclean_config_for(generated, base=config, **overrides)
    dictionaries = generated.dictionaries if use_external else []
    matching = generated.matching_dependencies if use_external else []
    ctx = HoloClean(cfg).context(generated.dirty, generated.constraints,
                                 dictionaries=dictionaries,
                                 matching_dependencies=matching)
    result = RepairPlan.default().run(ctx).result
    quality = evaluate_repairs(generated.dirty, result.repaired,
                               generated.clean,
                               error_cells=generated.error_cells)
    run = MethodRun(method="HoloClean", dataset=generated.name,
                    quality=quality, runtime=result.total_runtime,
                    timings=dict(result.timings), report=result.report)
    return run, result


def make_baseline(name: str, generated: GeneratedDataset,
                  time_budget: float | None = None) -> RepairMethod:
    """Instantiate one of the paper's baselines for a dataset."""
    if name == "Holistic":
        return HolisticRepair(generated.constraints, time_budget=time_budget)
    if name == "KATARA":
        if not generated.dictionaries:
            raise ValueError(f"{generated.name} has no external dictionary "
                             f"for KATARA")
        return KataraRepair(generated.dictionaries[0],
                            generated.matching_dependencies,
                            time_budget=time_budget)
    if name == "SCARE":
        return ScareRepair(time_budget=time_budget)
    raise ValueError(f"unknown baseline {name!r}")


def run_baseline(name: str, generated: GeneratedDataset,
                 time_budget: float | None = None) -> MethodRun:
    """Run one baseline; timeouts become DNF rows as in Table 3/4."""
    try:
        method = make_baseline(name, generated, time_budget=time_budget)
    except ValueError:
        # Method not applicable (KATARA without a dictionary → "n/a").
        return MethodRun(method=name, dataset=generated.name, quality=None,
                         runtime=0.0, timed_out=False)
    try:
        outcome = method.run(generated.dirty)
    except MethodTimeout:
        return MethodRun(method=name, dataset=generated.name, quality=None,
                         runtime=time_budget or 0.0, timed_out=True)
    quality = evaluate_repairs(generated.dirty, outcome.repaired,
                               generated.clean,
                               error_cells=generated.error_cells)
    return MethodRun(method=name, dataset=generated.name, quality=quality,
                     runtime=outcome.runtime)
