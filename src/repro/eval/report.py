"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """ASCII table with per-column width fitting."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, xs: list, ys: list) -> str:
    """One figure series as ``name: x=y`` pairs (figures are printed, not
    plotted, in this reproduction)."""
    points = ", ".join(f"{_fmt(x)}→{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {points}"
