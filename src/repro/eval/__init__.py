"""Evaluation harness: repair quality, calibration, and report rendering.

Implements the paper's evaluation methodology (Section 6.1): precision =
correct repairs / repairs performed, recall = correct repairs / total
errors, F1 = their harmonic mean; plus the marginal-probability bucket
analysis of Figure 6 and plain-text table/figure renderers used by the
benchmark scripts.
"""

from repro.eval.metrics import RepairQuality, evaluate_repairs, evaluate_method_result
from repro.eval.buckets import BucketReport, bucket_error_rates
from repro.eval.report import render_table, render_series
from repro.eval.harness import MethodRun, run_holoclean, run_baseline, holoclean_config_for

__all__ = [
    "RepairQuality",
    "evaluate_repairs",
    "evaluate_method_result",
    "BucketReport",
    "bucket_error_rates",
    "render_table",
    "render_series",
    "MethodRun",
    "run_holoclean",
    "run_baseline",
    "holoclean_config_for",
]
