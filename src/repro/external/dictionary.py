"""External dictionaries (the ``ExtDict`` relation of Section 4.1).

A dictionary is a small clean relation — e.g. the paper's address listing
with columns ``Ext_Address, Ext_City, Ext_State, Ext_Zip`` — identified by
an indicator ``k`` so that the model can learn a separate reliability
weight ``w(k)`` per dictionary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable


class ExternalDictionary:
    """A named collection of clean reference entries.

    Entries are attribute → value dicts over ``attributes``.  Exact-match
    indexes are built lazily per attribute to keep matching-dependency
    grounding near-linear.
    """

    def __init__(self, name: str, attributes: list[str],
                 entries: Iterable[dict[str, str | None]] = ()):
        if not name:
            raise ValueError("dictionary needs a name (the indicator k)")
        self.name = name
        self.attributes = list(attributes)
        if not self.attributes:
            raise ValueError("dictionary needs at least one attribute")
        self._entries: list[dict[str, str | None]] = []
        self._indexes: dict[str, dict[str, list[int]]] = {}
        for e in entries:
            self.add(e)

    def add(self, entry: dict[str, str | None]) -> int:
        unknown = set(entry) - set(self.attributes)
        if unknown:
            raise KeyError(f"entry has attributes not in dictionary: {sorted(unknown)}")
        full = {a: entry.get(a) for a in self.attributes}
        self._entries.append(full)
        self._indexes.clear()  # invalidate lazy indexes
        return len(self._entries) - 1

    @property
    def entries(self) -> list[dict[str, str | None]]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def index_on(self, attribute: str) -> dict[str, list[int]]:
        """Value → entry-ids index for one attribute (built lazily)."""
        if attribute not in self.attributes:
            raise KeyError(f"no such dictionary attribute: {attribute}")
        idx = self._indexes.get(attribute)
        if idx is None:
            idx = defaultdict(list)
            for eid, entry in enumerate(self._entries):
                v = entry.get(attribute)
                if v is not None:
                    idx[v].append(eid)
            idx = dict(idx)
            self._indexes[attribute] = idx
        return idx

    def lookup(self, attribute: str, value: str) -> list[int]:
        """Entry ids whose ``attribute`` equals ``value`` exactly."""
        return self.index_on(attribute).get(value, [])

    def __repr__(self) -> str:
        return (f"ExternalDictionary(name={self.name!r}, "
                f"attributes={self.attributes!r}, entries={len(self._entries)})")
