"""Grounding matching dependencies into the ``Matched`` relation.

Example 3 of the paper: for the dependency ``Zip = Ext_Zip → City =
Ext_City``, every tuple whose zip equals a dictionary entry's zip yields
``Matched(t, City, c2, k)`` where ``c2`` is the dictionary's city.  The
compilation module then attaches a factor ``Value?(t, a, d) :-
Matched(t, a, d, k)`` with a per-dictionary weight ``w(k)``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.constraints.matching import MatchingDependency
from repro.dataset.dataset import Cell, Dataset
from repro.external.dictionary import ExternalDictionary


@dataclass(frozen=True)
class Match:
    """One grounded ``Matched(t, a, v, k)`` fact with a support count."""

    cell: Cell
    value: str
    dictionary: str
    support: int = 1


class MatchedRelation:
    """All grounded matches, indexed by cell."""

    def __init__(self):
        self._by_cell: dict[Cell, list[Match]] = defaultdict(list)
        self._count = 0

    def add(self, match: Match) -> None:
        self._by_cell[match.cell].append(match)
        self._count += 1

    def for_cell(self, cell: Cell) -> list[Match]:
        return self._by_cell.get(cell, [])

    def cells(self) -> list[Cell]:
        return list(self._by_cell)

    def best_value(self, cell: Cell) -> str | None:
        """The matched value with the highest total support, if any."""
        matches = self._by_cell.get(cell)
        if not matches:
            return None
        totals: Counter[str] = Counter()
        for m in matches:
            totals[m.value] += m.support
        return totals.most_common(1)[0][0]

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        for matches in self._by_cell.values():
            yield from matches


def match_dictionary(dataset: Dataset, dictionary: ExternalDictionary,
                     dependencies: list[MatchingDependency]) -> MatchedRelation:
    """Ground every matching dependency against one dictionary.

    Exact match predicates are served from dictionary indexes; fuzzy
    (``≈``) predicates filter the candidate entries afterwards.  If no
    exact predicate exists the dependency scans the whole dictionary —
    acceptable because dictionaries are small reference tables.

    Distinct matched values are aggregated with their support (number of
    matching entries), so conflicting dictionary entries surface as
    competing ``Matched`` facts rather than being silently dropped.
    """
    matched = MatchedRelation()
    for md in dependencies:
        exact = [m for m in md.matches if not m.fuzzy]
        fuzzy = [m for m in md.matches if m.fuzzy]
        for tid in dataset.tuple_ids:
            values = dataset.tuple_dict(tid)
            candidates = _candidate_entries(dictionary, exact, values)
            if candidates is None:  # no exact predicate: scan everything
                candidates = range(len(dictionary))
            support: Counter[str] = Counter()
            for eid in candidates:
                entry = dictionary.entries[eid]
                if all(m.matches(values.get(m.dataset_attribute),
                                 entry.get(m.dict_attribute)) for m in fuzzy):
                    v = entry.get(md.dict_target_attribute)
                    if v is not None:
                        support[v] += 1
            cell = Cell(tid, md.target_attribute)
            for value, count in support.items():
                matched.add(Match(cell, value, dictionary.name, support=count))
    return matched


def _candidate_entries(dictionary: ExternalDictionary, exact_predicates,
                       tuple_values: dict[str, str | None]) -> list[int] | None:
    """Intersect index lookups for all exact predicates.

    Returns None when there is no exact predicate to index on, and an
    empty list when some predicate's dataset value is NULL (no match is
    possible per the NULL semantics of matching).
    """
    if not exact_predicates:
        return None
    result: set[int] | None = None
    for pred in exact_predicates:
        v = tuple_values.get(pred.dataset_attribute)
        if v is None:
            return []
        ids = set(dictionary.lookup(pred.dict_attribute, v))
        result = ids if result is None else (result & ids)
        if not result:
            return []
    return sorted(result) if result else []
