"""External information: dictionaries and matching-dependency grounding.

Implements the ``ExtDict(tk, ak, v, k)`` relation of Section 4.1 and the
``Matched(t, a, v, k)`` grounding of Example 3: aligning dirty tuples with
entries of external dictionaries via matching dependencies.
"""

from repro.external.dictionary import ExternalDictionary
from repro.external.matcher import Match, MatchedRelation, match_dictionary

__all__ = [
    "ExternalDictionary",
    "Match",
    "MatchedRelation",
    "match_dictionary",
]
