#!/usr/bin/env python3
"""External-data scenario: matching dependencies against a dictionary.

Demonstrates the paper's Example 3: an address listing is attached to the
dirty relation through matching dependencies (m1/m2 of Figure 1C), the
``Matched`` relation is grounded, and the per-dictionary reliability
weight ``w(k)`` lets HoloClean lean on the dictionary for cells the
statistical signals cannot decide — while §6.3.2's finding (small overall
F1 gain, limited by dictionary coverage) is reproduced on the Food
dataset.

Run with::

    python examples/external_dictionary.py
"""

from repro import (
    Dataset,
    ExternalDictionary,
    HoloClean,
    HoloCleanConfig,
    MatchingDependency,
    MatchPredicate,
    Schema,
    parse_fd,
)
from repro.data import generate_food
from repro.eval.harness import run_holoclean
from repro.external.matcher import match_dictionary

# ---------------------------------------------------------------------------
# 1. Example 3 in miniature: ground Matched(t, City, c2, k).
# ---------------------------------------------------------------------------
schema = Schema(["Address", "City", "State", "Zip"])
rows = [
    ["3465 S Morgan ST", "Cicago", "IL", "60608"],
    ["3465 S Morgan ST", "Chicago", "IL", "60608"],
    ["100 W Lake ST", "Chicago", "IL", "60601"],
]
# Duplicate context rows (inspection records repeat across years) give the
# learner clean evidence to train the dictionary weight on.
rows += [["3465 S Morgan ST", "Chicago", "IL", "60608"]] * 6
rows += [["100 W Lake ST", "Chicago", "IL", "60601"]] * 6
dataset = Dataset(schema, rows)
dictionary = ExternalDictionary("chicago-addresses",
                                ["Ext_Address", "Ext_City", "Ext_State",
                                 "Ext_Zip"], [
    {"Ext_Address": "3465 S Morgan ST", "Ext_City": "Chicago",
     "Ext_State": "IL", "Ext_Zip": "60608"},
    {"Ext_Address": "100 W Lake ST", "Ext_City": "Chicago",
     "Ext_State": "IL", "Ext_Zip": "60601"},
])
m1 = MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                        "City", "Ext_City", name="m1")
m2 = MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                        "State", "Ext_State", name="m2")

matched = match_dictionary(dataset, dictionary, [m1, m2])
print("Grounded Matched facts (Example 3):")
for fact in matched:
    print(f"  Matched({fact.cell}, {fact.value!r}, k={fact.dictionary}) "
          f"support={fact.support}")

constraints = [dc for dc in parse_fd("Zip -> City,State").to_denial_constraints()]
result = HoloClean(HoloCleanConfig(tau=0.3, epochs=30, seed=1)).repair(
    dataset, constraints, dictionaries=[dictionary],
    matching_dependencies=[m1, m2])
print("\nRepairs with dictionary support:")
for cell, inference in sorted(result.repairs.items()):
    print(f"  {cell}: {inference.init_value!r} -> {inference.chosen_value!r}"
          f" (p={inference.confidence:.2f})")

# ---------------------------------------------------------------------------
# 2. §6.3.2 at dataset scale: the dictionary's marginal F1 contribution.
# ---------------------------------------------------------------------------
print("\nFood dataset: HoloClean with vs without the address dictionary…")
generated = generate_food(num_rows=800)
without, _ = run_holoclean(generated)
with_dict, _ = run_holoclean(generated, use_external=True)
print(f"  F1 without dictionary: {without.quality.f1:.4f}")
print(f"  F1 with dictionary:    {with_dict.quality.f1:.4f}")
print(f"  gain: {with_dict.quality.f1 - without.quality.f1:+.4f} "
      f"(the paper reports gains below 1% — coverage-limited)")
