#!/usr/bin/env python3
"""Flights scenario: learning source reliability to fuse conflicting data.

The Flights dataset (Li et al. [30]) is the paper's stress test: dozens
of web sources report departure/arrival times for the same flights and
most cells are in conflict.  Constraint-based repairs fail outright
(Holistic performs no correct repairs in Table 3) because every repair
context receives contradictory demands; HoloClean instead treats the
``Source`` column as provenance, learns a reliability weight per source
(the SLiMFast [35] signal), and recovers the true schedule.

Run with::

    python examples/flights_fusion.py [num_flights]
"""

import sys

from repro.baselines.holistic import HolisticRepair
from repro.data import generate_flights
from repro.eval.harness import run_holoclean
from repro.eval.metrics import evaluate_repairs

num_flights = int(sys.argv[1]) if len(sys.argv) > 1 else 40

print(f"Generating Flights dataset ({num_flights} flights × 34 sources)…")
generated = generate_flights(num_flights=num_flights)
row = generated.table2_row()
print(f"  {row['tuples']} tuples, {row['violations']} violations, "
      f"{row['noisy_cells']} noisy cells "
      f"({row['noisy_cells'] / generated.dirty.num_cells:.0%} of all cells), "
      f"{generated.num_errors} wrong values\n")

print("Running HoloClean (tau = 0.3, source features on)…")
hc_run, result = run_holoclean(generated)
print(f"  {result.summary()}")
print(f"  quality: {hc_run.quality}\n")

print("Running Holistic (minimality over denial constraints)…")
holistic = HolisticRepair(generated.constraints).run(generated.dirty)
quality = evaluate_repairs(generated.dirty, holistic.repaired,
                           generated.clean,
                           error_cells=generated.error_cells)
print(f"  quality: {quality}")
fresh = sum(1 for v in holistic.repairs.values()
            if v.startswith("__fresh_"))
print(f"  {fresh}/{len(holistic.repairs)} repairs were fresh placeholder "
      f"values (contradictory repair contexts)\n")

print("Why it works: every source's reports vote for candidate values; "
      "training over the\nplurality-labelled evidence assigns higher "
      "weights to sources that consistently\nagree with the consensus — "
      "the reliable airline/airport feeds.")
assert hc_run.quality.f1 > quality.f1
