#!/usr/bin/env python3
"""Hospital scenario: confidence-aware repair auditing (Figure 6).

Runs HoloClean on the classic Hospital benchmark and then *audits* the
proposed repairs by marginal probability, reproducing the paper's
calibration analysis: high-confidence repairs are almost always correct,
so a practitioner can accept the [0.9, 1.0] bucket wholesale and route
only the low-confidence tail to human review (the user-feedback loop
sketched in Section 2.2).

Run with::

    python examples/hospital_audit.py [num_rows]
"""

import sys

from repro.data import generate_hospital
from repro.eval.buckets import bucket_error_rates
from repro.eval.harness import run_holoclean

num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1000

print(f"Generating Hospital benchmark ({num_rows} rows, ~5% 'x' typos)…")
generated = generate_hospital(num_rows=num_rows)
print(f"  {generated.num_errors} injected errors\n")

print("Running HoloClean (tau = 0.5)…")
hc_run, result = run_holoclean(generated)
print(f"  {result.summary()}")
print(f"  quality: {hc_run.quality}\n")

report = bucket_error_rates(result, generated.clean)
print("Repair audit by marginal probability (compare Figure 6):")
print(f"  {'bucket':<12} {'repairs':>8} {'errors':>7} {'error-rate':>11}")
for label, count, errors, rate in zip(report.labels(), report.counts,
                                      report.errors, report.error_rates):
    rate_text = f"{rate:.3f}" if rate is not None else "—"
    print(f"  {label:<12} {count:>8} {errors:>7} {rate_text:>11}")

to_review = sum(c for c, (lo, _hi) in zip(report.counts, report.buckets)
                if lo < 0.7)
print(f"\nSuggested workflow: auto-apply the high-confidence repairs and "
      f"send {to_review} low-confidence\nproposals (confidence < 0.7) to "
      f"a human reviewer — the marginals carry rigorous semantics.")
