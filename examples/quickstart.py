#!/usr/bin/env python3
"""Quickstart: repair the paper's Figure 1 example end to end.

The input is the Chicago food-inspection snippet from Figure 1(A): tuple
t0 reports a wrong zip code (60609 instead of 60608) and tuple t3 a
misspelled city ("Cicago").  Three functional dependencies — Figure 1(B)
— are compiled into denial constraints, and HoloClean combines the
constraint signal with co-occurrence statistics and the minimality prior
to repair both errors, reporting its confidence in each proposal.

Run with::

    python examples/quickstart.py
"""

from repro import (Dataset, HoloClean, HoloCleanConfig, RepairContext,
                   RepairPlan, Schema, parse_fd)

# ---------------------------------------------------------------------------
# 1. The dirty relation (Figure 1A plus duplicate context rows — real
#    inspection data repeats establishments across years).
# ---------------------------------------------------------------------------
schema = Schema(["DBAName", "AKAName", "Address", "City", "State", "Zip"])
rows = [
    ["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST", "Chicago", "IL", "60609"],
    ["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST", "Chicago", "IL", "60608"],
    ["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST", "Chicago", "IL", "60608"],
    ["Johnnyo's",         "Johnnyo's", "3465 S Morgan ST", "Cicago",  "IL", "60608"],
]
for _ in range(12):
    rows.append(["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST",
                 "Chicago", "IL", "60608"])
    rows.append(["Taco Place", "Taco's", "100 W Lake ST",
                 "Chicago", "IL", "60601"])
dataset = Dataset(schema, rows, name="food-snippet")

# ---------------------------------------------------------------------------
# 2. Integrity constraints: the functional dependencies of Figure 1(B),
#    compiled to denial constraints (Example 2 of the paper).
# ---------------------------------------------------------------------------
fds = [
    parse_fd("DBAName -> Zip"),             # c1
    parse_fd("Zip -> City,State"),          # c2
    parse_fd("City,State,Address -> Zip"),  # c3
]
constraints = [dc for fd in fds for dc in fd.to_denial_constraints()]
print("Denial constraints:")
for dc in constraints:
    print("  ", dc)

# ---------------------------------------------------------------------------
# 3. Repair.  `HoloClean.repair()` is a facade over the staged plan
#    Detect → Compile → Learn → Infer → Apply (Figure 2's three modules);
#    running the plan on an explicit RepairContext keeps every
#    intermediate artifact around for inspection and partial re-runs.
# ---------------------------------------------------------------------------
config = HoloCleanConfig(tau=0.3, epochs=40, seed=1)
ctx = RepairContext(dataset=dataset, constraints=constraints, config=config)
ctx = RepairPlan.default().run(ctx)
result = ctx.result

print(f"\nStaged execution: {RepairPlan.default()}")
print("Per-stage wall-clock:",
      ", ".join(f"{name}={t * 1000:.1f}ms" for name, t in ctx.timings.items()))
print(f"Detection found {len(ctx.detection.noisy_cells)} noisy cells; "
      f"the compiled model has {len(ctx.model.query_ids)} query variables.")

# The context is re-enterable: keep the detection and compiled model,
# and re-run only learn → infer → apply (the Section 2.2 loop).
rerun = RepairPlan.default().starting_at("learn").run(ctx).result
assert rerun.repaired == result.repaired

# The one-shot facade produces the identical result.
facade = HoloClean(config).repair(dataset, constraints)
assert facade.repaired == result.repaired

print(f"\n{result.summary()}")
print("\nProposed repairs (with marginal probabilities):")
for cell, inference in sorted(result.repairs.items()):
    print(f"  {cell}: {inference.init_value!r} -> "
          f"{inference.chosen_value!r}  (confidence {inference.confidence:.2f})")

print("\nMarginal distribution of an inferred cell (compare Figure 2):")
zip_cell = next(c for c in result.inferences if c.tid == 0
                and c.attribute == "Zip")
inference = result.inferences[zip_cell]
for value, probability in zip(inference.domain, inference.marginal):
    print(f"  {zip_cell} = {value!r}: {probability:.3f}")

assert result.repaired.value(0, "Zip") == "60608"
assert result.repaired.value(3, "City") == "Chicago"
print("\nBoth Figure 1 errors repaired correctly.")
