#!/usr/bin/env python3
"""Food-inspections scenario: cleaning a city dataset at scale.

Generates the Food benchmark analogue (establishments inspected across
years, with non-systematic transcription errors), runs HoloClean with the
paper's Table 3 configuration (τ = 0.5), and compares against the
Holistic constraint-only baseline — reproducing the motivating story of
the paper's introduction on a realistic workload.

Run with::

    python examples/food_inspections.py [num_rows]
"""

import sys

from repro.baselines.holistic import HolisticRepair
from repro.data import generate_food
from repro.eval.harness import run_holoclean
from repro.eval.metrics import evaluate_repairs

num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1200

print(f"Generating Food dataset ({num_rows} inspection records)…")
generated = generate_food(num_rows=num_rows)
row = generated.table2_row()
print(f"  {row['tuples']} tuples × {row['attributes']} attributes, "
      f"{row['violations']} violations, {row['noisy_cells']} noisy cells, "
      f"{generated.num_errors} injected errors\n")

print("Running HoloClean (tau = 0.5, denial constraints as features)…")
hc_run, result = run_holoclean(generated)
print(f"  {result.summary()}")
print(f"  quality: {hc_run.quality}\n")

print("Running the Holistic baseline (constraints + minimality)…")
holistic = HolisticRepair(generated.constraints).run(generated.dirty)
holistic_quality = evaluate_repairs(generated.dirty, holistic.repaired,
                                    generated.clean,
                                    error_cells=generated.error_cells)
print(f"  {len(holistic.repairs)} repairs in {holistic.runtime:.1f}s")
print(f"  quality: {holistic_quality}\n")

improvement = (hc_run.quality.f1 / holistic_quality.f1
               if holistic_quality.f1 else float("inf"))
print(f"HoloClean F1 improvement over Holistic: {improvement:.2f}x")

print("\nExample repairs:")
for cell, inference in list(sorted(result.repairs.items()))[:8]:
    truth = generated.clean.cell_value(cell)
    verdict = "✓" if inference.chosen_value == truth else "✗"
    print(f"  {verdict} {cell}: {inference.init_value!r} -> "
          f"{inference.chosen_value!r} (p={inference.confidence:.2f}, "
          f"truth {truth!r})")
