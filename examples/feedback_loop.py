#!/usr/bin/env python3
"""Human-in-the-loop scenario: review low-confidence repairs, retrain.

Section 2.2 of the paper: because HoloClean's marginals carry rigorous
semantics, a practitioner can "ask users to verify repairs with low
marginal probabilities and use those as labeled examples to retrain the
parameters".  This example runs a :class:`RepairSession` on the Hospital
benchmark, pulls the least-confident proposals, plays the role of the
reviewer using the generator's ground truth, and reruns with the verified
labels folded in.

Sessions are built on the staged repair API: ``run()`` executes the
default Detect → Compile → Learn → Infer → Apply plan and retains the
:class:`repro.RepairContext` (grounding engine, detection, compiled
model); ``rerun()`` re-enters the plan at the learn stage, folding the
verified cells in as labeled evidence and clamps — no recompilation.

Run with::

    python examples/feedback_loop.py [num_rows]
"""

import sys

from repro import HoloCleanConfig, RepairSession
from repro.data import generate_hospital
from repro.eval.metrics import evaluate_repairs

num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 500

print(f"Generating Hospital benchmark ({num_rows} rows)…")
generated = generate_hospital(num_rows=num_rows)

session = RepairSession(generated.dirty, generated.constraints,
                        config=HoloCleanConfig(tau=0.5, epochs=60, seed=1))
first = session.run()
before = evaluate_repairs(generated.dirty, first.repaired, generated.clean,
                          error_cells=generated.error_cells)
print(f"Initial pass:  {before}")
print("Phase timings: "
      + ", ".join(f"{k}={v:.2f}s" for k, v in first.timings.items()))
grounding = {k: v for k, v in first.size_report.items()
             if str(k).startswith("grounding_")}
print(f"Engine grounding counters: {len(grounding)} "
      f"(sessions share the vectorized fast path)")

queue = session.low_confidence(below=0.9)
print(f"\n{len(queue)} proposals below 0.9 confidence; reviewing up to 15…")
for inference in queue[:15]:
    truth = generated.clean.cell_value(inference.cell)
    session.feedback(inference.cell, truth)
    verdict = "confirmed" if truth == inference.chosen_value else "corrected"
    print(f"  {inference.cell}: proposed {inference.chosen_value!r} "
          f"(p={inference.confidence:.2f}) → reviewer {verdict} {truth!r}")

second = session.rerun()  # learn → infer → apply only; model reused
after = evaluate_repairs(generated.dirty, second.repaired, generated.clean,
                         error_cells=generated.error_cells)
print(f"\nAfter feedback: {after}")
print(f"Rerun repair phase: {second.timings['repair']:.2f}s "
      f"(detection + compilation reused from the first pass)")
print(f"F1 change: {after.f1 - before.f1:+.4f} with "
      f"{session.feedback_count} verified cells")
assert after.f1 >= before.f1 - 1e-9
