"""Setup shim for offline editable installs.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (which build an editable wheel) cannot run.
This classic ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` code path, which works offline.  Metadata
lives in ``pyproject.toml``/here and stays in sync by hand.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "HoloClean: holistic data repairs with probabilistic inference "
        "(VLDB 2017) — full reproduction"
    ),
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
)
